"""The golden regression corpus: what to run and how to digest it.

Two corpora make every hot-path or protocol change bit-accountable:

* the **matrix** — direct simulations spanning the four paper
  topologies x audit-relevant modes (plain / obs attribution / RAS
  noise / both), every arbiter, and two permanent-failure scenarios
  that exercise the quiesce path.  Each case records the lossless
  :func:`repro.serialization.result_digest` plus headline metrics so a
  digest change comes with a readable "what moved" diff.
* the **experiments** — every registered experiment run at smoke scale
  (``EXPERIMENT_REQUESTS`` requests, two workloads), digested over the
  canonical tree of its output data.

Checked-in snapshots live in ``tests/goldens/``; regenerate them with
``python tools/regen_goldens.py`` (see ``docs/testing.md`` for the
policy).  All corpus runs are executed with invariant audits on, so a
golden pass certifies conservation as well as bit-stability.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from repro.config import VALID_ARBITERS, SystemConfig
from repro.runner.job import canonical_tree, digest_tree
from repro.serialization import result_digest
from repro.units import GIB_BYTES
from repro.workloads import WorkloadSpec

#: Request count for one matrix simulation (matches the scheduler
#: equivalence suite's scale: seconds, not minutes, for the whole grid).
MATRIX_REQUESTS = 150

#: Smoke scale for the experiment corpus.
EXPERIMENT_REQUESTS = 50
EXPERIMENT_WORKLOADS = ("BACKPROP", "KMEANS")

#: The four paper topologies (Figs 10-12); tree rides along as the
#: intermediate step between ring and skip-list.
MATRIX_TOPOLOGIES = ("chain", "ring", "skiplist", "metacube")


def _matrix_config(**overrides) -> SystemConfig:
    """The corpus base config: the tests' small 8-cube-per-port system."""
    defaults = dict(total_capacity_bytes=1024 * GIB_BYTES)
    defaults.update(overrides)
    return SystemConfig(**defaults)


def _matrix_workload() -> WorkloadSpec:
    return WorkloadSpec(
        name="TEST",
        read_fraction=0.6,
        mean_gap_ns=2.0,
        locality_lines=4.0,
        mlp=16,
        burst_size=4.0,
    )


def _p2p_workload() -> WorkloadSpec:
    return replace(_matrix_workload(), p2p_fraction=0.15)


def _overload_workload() -> WorkloadSpec:
    """Bursty open-loop arrivals at twice the matrix workload's rate."""
    return replace(
        _matrix_workload(),
        arrival="onoff",
        mean_gap_ns=1.0,
        on_fraction=0.5,
        on_burst=16.0,
    )


#: A case is ``(name, config, workload)``; ``None`` means the shared
#: matrix workload.
MatrixCase = Tuple[str, SystemConfig, Optional[WorkloadSpec]]


def matrix_cases() -> List[MatrixCase]:
    """Named configs of the simulation matrix, in a stable order."""
    cases: List[MatrixCase] = []
    for topology in MATRIX_TOPOLOGIES:
        base = _matrix_config(topology=topology)
        cases.append((f"{topology}/base", base, None))
        cases.append((f"{topology}/obs", base.with_obs(attribution=True), None))
        cases.append((
            f"{topology}/ras", base.with_ras(bit_error_rate=1e-6), None
        ))
        cases.append((
            f"{topology}/obs+ras",
            base.with_obs(attribution=True).with_ras(bit_error_rate=1e-6),
            None,
        ))
    for arbiter in VALID_ARBITERS:
        cases.append((
            f"skiplist/arb-{arbiter}",
            _matrix_config(topology="skiplist", arbiter=arbiter),
            None,
        ))
    cases.append(("tree/base", _matrix_config(topology="tree"), None))
    # Permanent failures drive the quiesce/reroute path (and its audit
    # point); one link cut on the chain, one whole cube on the skip-list.
    cases.append((
        "chain/ras-linkfail",
        _matrix_config(topology="chain").with_ras(
            link_failures=((2, 3, 200_000),)
        ),
        None,
    ))
    cases.append((
        "skiplist/ras-cubefail",
        _matrix_config(topology="skiplist")
        .with_obs(attribution=True)
        .with_ras(cube_failures=((3, 250_000),)),
        None,
    ))
    # Peer-to-peer copies over a mixed-tier chain: the promote pattern
    # needs both technologies present to pick an opposite-tier target,
    # and the four modes pin down p2p's interaction with attribution
    # segments and CRC replays.
    p2p_base = _matrix_config(
        topology="chain", dram_fraction=0.5, p2p_pattern="promote"
    )
    p2p = _p2p_workload()
    cases.append(("p2p/base", p2p_base, p2p))
    cases.append(("p2p/obs", p2p_base.with_obs(attribution=True), p2p))
    cases.append(("p2p/ras", p2p_base.with_ras(bit_error_rate=1e-6), p2p))
    cases.append((
        "p2p/obs+ras",
        p2p_base.with_obs(attribution=True).with_ras(bit_error_rate=1e-6),
        p2p,
    ))
    # Overload: open-loop Poisson arrivals past capacity with deadlines,
    # bounded retry and admission watermarks — pins down the timeout /
    # retry / shed machinery, its attribution tiling (obs) and its
    # interaction with RAS replays and degraded availability.
    overload_base = _matrix_config(topology="skiplist").with_overload(
        deadline_ps=150_000,
        max_retries=2,
        retry_backoff_ps=50_000,
        shed_high=96,
        shed_low=48,
    )
    overload = _overload_workload()
    cases.append(("overload/base", overload_base, overload))
    cases.append((
        "overload/obs", overload_base.with_obs(attribution=True), overload
    ))
    cases.append((
        "overload/ras", overload_base.with_ras(bit_error_rate=1e-6), overload
    ))
    return cases


#: Per-shard request count for the fleet corpus (kept below the matrix
#: scale: each fleet case runs several shards).
FLEET_REQUESTS = 60
FLEET_SHARDS = 6


def fleet_cases() -> List[Tuple[str, "FleetConfig"]]:
    """Named fleet configurations of the golden corpus, in stable order.

    Three cases pin the fleet layer end to end: a heterogeneous
    multi-topology fleet with the transparent default tenant (``base``),
    the same shards under a skewed/rate-scaled two-tenant registry
    (``skew``), and the same shards with staggered per-shard permanent
    faults (``ras``).  Each golden records the streaming
    :meth:`repro.fleet.FleetResult.digest`, which certifies fold-order
    and worker-count invariance on every corpus run.
    """
    from repro.fleet import FleetConfig, Tenant

    mix = ("chain", "skiplist", "metacube")
    shards = tuple(
        _matrix_config(topology=mix[i % len(mix)])
        for i in range(FLEET_SHARDS)
    )
    workload = _matrix_workload()
    cases: List[Tuple[str, FleetConfig]] = []
    cases.append((
        "fleet/base",
        FleetConfig(
            shards=shards, workload=workload,
            requests_per_shard=FLEET_REQUESTS,
        ),
    ))
    cases.append((
        "fleet/skew",
        FleetConfig(
            shards=shards,
            workload=workload,
            tenants=(
                Tenant("bulk", weight=2.0, skew=0.6),
                Tenant("hot", weight=1.0, rate_scale=2.0),
            ),
            requests_per_shard=FLEET_REQUESTS,
        ),
    ))
    cases.append((
        "fleet/ras",
        FleetConfig(
            shards=tuple(
                shard.with_ras(cube_failures=((1, 200_000 + 50_000 * i),))
                if i % 2 == 0 else shard
                for i, shard in enumerate(shards)
            ),
            workload=workload,
            requests_per_shard=FLEET_REQUESTS,
        ),
    ))
    return cases


def run_fleet_case(fleet, audit: bool = True) -> Dict[str, object]:
    """Run one fleet case on a fresh serial runner; reduce to a golden.

    The digest is :meth:`repro.fleet.FleetResult.digest` — identical
    for any fold order, worker count, scheduler engine, and cache
    temperature, so this entry also re-certifies the fleet determinism
    contract on every verification run.
    """
    from repro.check import audits
    from repro.fleet import run_fleet
    from repro.runner import ParallelRunner

    with audits(audit):
        result = run_fleet(fleet, runner=ParallelRunner(jobs=1))
    total = result.total
    p99 = total.percentile_ns(0.99)
    return {
        "digest": result.digest(),
        "shards": result.shards_folded,
        "requests": total.requests,
        "availability": round(total.availability, 6),
        "p99_latency_ns": None if p99 is None else round(p99, 6),
    }


def run_matrix_case(
    config: SystemConfig,
    requests: int = MATRIX_REQUESTS,
    audit: bool = True,
    workload: Optional[WorkloadSpec] = None,
) -> Dict[str, object]:
    """Simulate one matrix case and reduce it to a golden entry.

    The digest is the lossless result digest; the headline metrics ride
    along purely so a mismatch report can say what moved.
    """
    from repro.system import MemoryNetworkSystem

    system = MemoryNetworkSystem(
        config,
        workload if workload is not None else _matrix_workload(),
        requests=requests,
        audit=audit,
    )
    result = system.run()
    return {
        "digest": result_digest(result),
        "events": result.events_processed,
        "runtime_ps": result.runtime_ps,
        "mean_latency_ns": round(result.mean_latency_ns, 6),
        "failed": result.requests_failed,
    }


def compute_matrix(audit: bool = True) -> Dict[str, Dict[str, object]]:
    """Run the whole matrix; returns ``{case name: golden entry}``.

    Fleet cases ride in the same corpus (keys ``fleet/*``) so one
    snapshot pins single-MN and fleet-level behaviour together.
    """
    out = {
        name: run_matrix_case(config, audit=audit, workload=workload)
        for name, config, workload in matrix_cases()
    }
    for name, fleet in fleet_cases():
        out[name] = run_fleet_case(fleet, audit=audit)
    return out


def compute_experiments(
    requests: int = EXPERIMENT_REQUESTS,
    workload_names: Tuple[str, ...] = EXPERIMENT_WORKLOADS,
    only: Optional[List[str]] = None,
) -> Dict[str, Dict[str, object]]:
    """Run every registered experiment at smoke scale and digest it.

    The digest covers the canonical tree of ``ExperimentOutput.data``
    (the numbers every figure/table renders from), not the rendered
    text, so cosmetic formatting changes do not churn the corpus.
    Audits apply to the underlying simulations whenever they are
    ambiently enabled (``REPRO_AUDIT=1`` reaches worker processes too).
    """
    from repro.experiments.registry import EXPERIMENTS
    from repro.workloads import get_workload

    workloads = [get_workload(name) for name in workload_names]
    out: Dict[str, Dict[str, object]] = {}
    for experiment_id, run in EXPERIMENTS.items():
        if only is not None and experiment_id not in only:
            continue
        output = run(requests=requests, workloads=workloads)
        tree = canonical_tree(output.data)
        out[experiment_id] = {
            "digest": digest_tree({
                "experiment": experiment_id,
                "requests": requests,
                "workloads": list(workload_names),
                "data": tree,
            }),
            "series_rows": len(output.series()),
        }
    return out


def diff_goldens(
    old: Dict[str, Dict[str, object]],
    new: Dict[str, Dict[str, object]],
) -> List[str]:
    """Human-readable difference report between two golden corpora."""
    lines: List[str] = []
    for name in sorted(set(old) | set(new)):
        if name not in new:
            lines.append(f"- {name}: removed")
            continue
        if name not in old:
            lines.append(f"+ {name}: added ({new[name].get('digest', '?')[:12]})")
            continue
        before, after = old[name], new[name]
        if before == after:
            continue
        changed = [
            f"{key} {before.get(key)} -> {after.get(key)}"
            for key in sorted(set(before) | set(after))
            if before.get(key) != after.get(key) and key != "digest"
        ]
        detail = "; ".join(changed) if changed else (
            f"digest {str(before.get('digest'))[:12]} -> "
            f"{str(after.get('digest'))[:12]}"
        )
        lines.append(f"! {name}: {detail}")
    return lines
