"""Fleet-level conservation audit.

Single-system audits (:mod:`repro.check.auditor`) verify invariants
*inside* one MN shard; this module verifies the invariant *across* the
streaming fold: nothing a shard reported may be lost or double-counted
on the way into the :class:`repro.fleet.FleetResult` rollup.  Because
every fold path (per-tenant and fleet-total) consumes the same shard
result exactly once, the tenant aggregates must re-merge into state
bit-identical to the fleet total — any drift means a fold bug, not a
simulation bug.

Enabled the same way as all audits (:func:`repro.check.audits_enabled`);
:func:`repro.fleet.run_fleet` invokes it automatically when audits are
ambient.
"""

from __future__ import annotations

from repro.errors import InvariantViolation


def check_fleet_conservation(result) -> None:
    """Verify tenant aggregates re-merge exactly into the fleet total.

    Checks, over a completed (or partially folded) fleet result:

    * shard conservation — folded shard count equals the sum of
      per-tenant shard counts equals the fleet total's;
    * counter conservation — every per-kind counter (reads, writes,
      p2p, served, failed, ...) sums across tenants to the fleet total;
    * sample conservation — latency-histogram sample counts, event
      totals, and runtime sums across tenants equal the fleet total's.

    Raises :class:`repro.errors.InvariantViolation` with the standard
    ``(invariant, component, detail)`` triples on any mismatch.
    """
    from repro.fleet import TenantAggregate

    merged = TenantAggregate()
    for aggregate in result.tenants.values():
        merged.merge(aggregate)
    total = result.total
    violations = []

    if merged.shards != total.shards or total.shards != result.shards_folded:
        violations.append(
            (
                "fleet-shard-conservation",
                "fleet",
                f"tenants sum to {merged.shards} shards, total has "
                f"{total.shards}, folded {result.shards_folded}",
            )
        )

    merged_counts = merged.counters.as_dict()
    total_counts = total.counters.as_dict()
    for name in sorted(set(merged_counts) | set(total_counts)):
        left = merged_counts.get(name, 0)
        right = total_counts.get(name, 0)
        if left != right:
            violations.append(
                (
                    "fleet-counter-conservation",
                    f"counter:{name}",
                    f"tenants sum to {left}, fleet total has {right}",
                )
            )

    for attr in ("events", "runtime_ps_total", "runtime_ps_max"):
        left = getattr(merged, attr)
        right = getattr(total, attr)
        if left != right:
            violations.append(
                (
                    "fleet-counter-conservation",
                    f"aggregate:{attr}",
                    f"tenants give {left}, fleet total has {right}",
                )
            )

    if merged.latency.count != total.latency.count:
        violations.append(
            (
                "fleet-sample-conservation",
                "latency-histogram",
                f"tenants hold {merged.latency.count} samples, fleet "
                f"total holds {total.latency.count}",
            )
        )
    elif merged.latency.count and merged.latency.state() != total.latency.state():
        violations.append(
            (
                "fleet-sample-conservation",
                "latency-histogram",
                "tenant histograms re-merge to different bucket state "
                "than the fleet total",
            )
        )

    if violations:
        raise InvariantViolation(
            violations,
            {
                "point": "fleet-fold",
                "fleet": result.fleet_digest[:12],
                "shards_folded": result.shards_folded,
                "expected_shards": result.expected_shards,
                "tenants": len(result.tenants),
            },
        )
