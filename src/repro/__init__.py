"""repro — a reproduction of "There and Back Again: Optimizing the
Interconnect in Networks of Memory Cubes" (ISCA 2017).

Quickstart
----------
>>> from repro import SystemConfig, simulate, get_workload
>>> config = SystemConfig(topology="tree")
>>> result = simulate(config, get_workload("KMEANS"), requests=500)
>>> result.runtime_ns > 0
True

The public surface:

* :class:`SystemConfig` / :func:`parse_label` — configure an MN using
  the paper's own notation (``"50%-T (NVM-L)"``);
* :func:`simulate` / :class:`MemoryNetworkSystem` — run one workload;
* :mod:`repro.workloads` — the eight-workload paper suite and custom
  trace support;
* :mod:`repro.experiments` — regenerate every table and figure.
"""

from repro.config import (
    ARBITER_AGE,
    ARBITER_DISTANCE,
    ARBITER_DISTANCE_ENHANCED,
    ARBITER_GLOBAL_WEIGHTED,
    ARBITER_ROUND_ROBIN,
    NVM_FIRST,
    NVM_LAST,
    TOPOLOGY_CHAIN,
    TOPOLOGY_METACUBE,
    TOPOLOGY_RING,
    TOPOLOGY_SKIPLIST,
    TOPOLOGY_TREE,
    LinkConfig,
    MemTechConfig,
    PacketConfig,
    SystemConfig,
    dram_tech,
    nvm_tech,
    parse_label,
)
from repro.fleet import (
    FleetConfig,
    FleetResult,
    Tenant,
    run_fleet,
    uniform_fleet,
)
from repro.results import EnergyReport, LatencyBreakdown, SimResult, speedup_percent
from repro.multiport import MultiPortResult, simulate_all_ports
from repro.system import MemoryNetworkSystem, simulate
from repro.workloads import (
    PAPER_SUITE,
    Request,
    SyntheticWorkload,
    Trace,
    TraceWorkload,
    WorkloadSpec,
    get_workload,
    workload_names,
)

__version__ = "1.0.0"

__all__ = [
    "SystemConfig",
    "LinkConfig",
    "PacketConfig",
    "MemTechConfig",
    "dram_tech",
    "nvm_tech",
    "parse_label",
    "MemoryNetworkSystem",
    "simulate",
    "MultiPortResult",
    "simulate_all_ports",
    "FleetConfig",
    "FleetResult",
    "Tenant",
    "run_fleet",
    "uniform_fleet",
    "SimResult",
    "EnergyReport",
    "LatencyBreakdown",
    "speedup_percent",
    "WorkloadSpec",
    "Request",
    "SyntheticWorkload",
    "Trace",
    "TraceWorkload",
    "PAPER_SUITE",
    "get_workload",
    "workload_names",
    "TOPOLOGY_CHAIN",
    "TOPOLOGY_RING",
    "TOPOLOGY_TREE",
    "TOPOLOGY_SKIPLIST",
    "TOPOLOGY_METACUBE",
    "NVM_FIRST",
    "NVM_LAST",
    "ARBITER_ROUND_ROBIN",
    "ARBITER_DISTANCE",
    "ARBITER_DISTANCE_ENHANCED",
    "ARBITER_AGE",
    "ARBITER_GLOBAL_WEIGHTED",
    "__version__",
]
