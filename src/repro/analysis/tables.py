"""Plain-text table rendering for experiment output."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_percent(value: float, digits: int = 1) -> str:
    """Format a ratio-as-percent value, e.g. ``12.3%`` / ``-4.0%``."""
    return f"{value:.{digits}f}%"


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned ASCII table.

    Numbers are right-aligned, text left-aligned; the first column is
    treated as a label column.
    """
    materialized: List[List[str]] = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            if index >= len(widths):
                widths.append(len(cell))
            else:
                widths[index] = max(widths[index], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for index, cell in enumerate(cells):
            width = widths[index] if index < len(widths) else len(cell)
            if index == 0:
                parts.append(cell.ljust(width))
            else:
                parts.append(cell.rjust(width))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in materialized:
        lines.append(fmt_row(row))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)
