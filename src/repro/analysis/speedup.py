"""Speedup grids: workloads x configurations, normalized to a baseline."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.tables import render_table
from repro.config import SystemConfig, parse_label
from repro.results import SimResult
from repro.runner import SimJob, get_runner
from repro.workloads import WorkloadSpec


class SpeedupGrid:
    """Run a set of MN configurations over a workload suite.

    All simulations go through the ambient runner, whose
    content-addressed cache means a baseline shared by several figures
    (or several grids) is only simulated once per cache lifetime.
    :meth:`prefetch` dispatches a whole label set as one batch so the
    runner can execute the grid's points in parallel.
    """

    def __init__(
        self,
        workloads: Sequence[WorkloadSpec],
        requests: int = 2000,
        base_config: Optional[SystemConfig] = None,
        config_fn: Optional[Callable[[str], SystemConfig]] = None,
    ) -> None:
        self.workloads = list(workloads)
        self.requests = requests
        self.base_config = base_config or SystemConfig()
        self.config_fn = config_fn or (
            lambda label: parse_label(label, self.base_config)
        )

    # ------------------------------------------------------------------
    def _job(self, label: str, workload: WorkloadSpec) -> SimJob:
        return SimJob(
            config=self.config_fn(label),
            workload=workload,
            requests=self.requests,
        )

    def result(self, label: str, workload: WorkloadSpec) -> SimResult:
        return get_runner().run_one(self._job(label, workload))

    def prefetch(self, labels: Sequence[str]) -> None:
        """Simulate every (label, workload) point as one parallel batch.

        Subsequent :meth:`result` calls are then cache hits.  Callers
        that loop over :meth:`result` directly should prefetch first;
        :meth:`speedups` does it automatically.
        """
        get_runner().run(
            [
                self._job(label, workload)
                for workload in self.workloads
                for label in labels
            ]
        )

    def speedups(
        self, labels: Sequence[str], baseline_label: str
    ) -> Dict[str, Dict[str, float]]:
        """Per-workload percent speedup of each label over the baseline."""
        self.prefetch(list(labels) + [baseline_label])
        grid: Dict[str, Dict[str, float]] = {}
        for workload in self.workloads:
            base = self.result(baseline_label, workload)
            grid[workload.name] = {
                label: self.result(label, workload).speedup_over(base) * 100.0
                for label in labels
            }
        return grid

    def averages(
        self, grid: Dict[str, Dict[str, float]], labels: Sequence[str]
    ) -> Dict[str, float]:
        count = len(grid) or 1
        return {
            label: sum(row[label] for row in grid.values()) / count
            for label in labels
        }

    def render(
        self,
        labels: Sequence[str],
        baseline_label: str,
        title: str = "",
    ) -> str:
        grid = self.speedups(labels, baseline_label)
        rows: List[List[object]] = []
        for name, row in grid.items():
            rows.append([name] + [f"{row[label]:+.1f}%" for label in labels])
        averages = self.averages(grid, labels)
        rows.append(["average"] + [f"{averages[label]:+.1f}%" for label in labels])
        return render_table(["workload"] + list(labels), rows, title=title)
