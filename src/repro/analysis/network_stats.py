"""Per-link and per-cube statistics extracted from a finished system.

These power the link-utilization analysis behind the paper's skip-list
motivation ("the majority of a tree's links tend to be under-utilized",
Section 4.2) and are generally useful for debugging new topologies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.tables import render_table
from repro.topology.base import LinkKind


@dataclass(frozen=True)
class LinkStats:
    name: str
    kind: str
    packets: int
    bits: int
    busy_ps: int
    utilization: float  # busy time / runtime


@dataclass(frozen=True)
class CubeStats:
    node_id: int
    tech: str
    reads: int
    writes: int
    row_hits: int
    refreshes: int

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def row_hit_rate(self) -> float:
        return self.row_hits / self.accesses if self.accesses else 0.0


def link_stats(system, runtime_ps: int = 0) -> List[LinkStats]:
    """Snapshot per-link counters from a (finished) system."""
    runtime = runtime_ps or max(system.collector.last_complete_ps, 1)
    stats = []
    for link, kind in system._links:
        stats.append(
            LinkStats(
                name=link.name,
                kind="interposer" if kind == LinkKind.INTERPOSER else "external",
                packets=link.packets_carried,
                bits=link.bits_carried,
                busy_ps=link.busy_ps,
                utilization=min(link.busy_ps / runtime, 1.0),
            )
        )
    return stats


def cube_stats(system) -> List[CubeStats]:
    stats = []
    for node_id, cube in sorted(system.cubes.items()):
        stats.append(
            CubeStats(
                node_id=node_id,
                tech=cube.tech.name,
                reads=cube.total_reads(),
                writes=cube.total_writes(),
                row_hits=cube.total_row_hits(),
                refreshes=sum(c.refreshes for c in cube.controllers),
            )
        )
    return stats


def underutilized_links(system, threshold: float = 0.10) -> List[LinkStats]:
    """Links whose busy fraction is below ``threshold`` (Section 4.2)."""
    return [s for s in link_stats(system) if s.utilization < threshold]


def render_link_report(system) -> str:
    rows = [
        [s.name, s.kind, s.packets, f"{s.utilization * 100:.1f}%"]
        for s in sorted(link_stats(system), key=lambda s: -s.utilization)
    ]
    return render_table(
        ["link", "kind", "packets", "utilization"], rows, title="Link usage"
    )


def render_cube_report(system) -> str:
    rows = [
        [
            f"cube{s.node_id}",
            s.tech,
            s.reads,
            s.writes,
            f"{s.row_hit_rate * 100:.1f}%",
        ]
        for s in cube_stats(system)
    ]
    return render_table(
        ["cube", "tech", "reads", "writes", "row hits"], rows, title="Cube usage"
    )
