"""Latency-breakdown helpers (Fig 5 style)."""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.results import SimResult


def breakdown_rows(
    results: Sequence[SimResult], normalize_to: str = ""
) -> List[Dict[str, object]]:
    """Rows of (config, to/in/from memory in ns and as fractions).

    If ``normalize_to`` names a config label, all latencies are also
    reported relative to that config's total (the paper normalizes each
    workload's breakdown to the chain's total latency).
    """
    reference_total = None
    if normalize_to:
        for result in results:
            if result.config_label == normalize_to:
                reference_total = result.collector.all.total_ns or 1.0
                break
    rows = []
    for result in results:
        breakdown = result.collector.all
        row: Dict[str, object] = {
            "config": result.config_label,
            "workload": result.workload,
            "to_memory_ns": breakdown.to_memory_ns,
            "in_memory_ns": breakdown.in_memory_ns,
            "from_memory_ns": breakdown.from_memory_ns,
            "total_ns": breakdown.total_ns,
        }
        if reference_total:
            row["relative_total"] = breakdown.total_ns / reference_total
            row["rel_to"] = breakdown.to_memory_ns / reference_total
            row["rel_in"] = breakdown.in_memory_ns / reference_total
            row["rel_from"] = breakdown.from_memory_ns / reference_total
        rows.append(row)
    return rows
