"""The Section 3.2 "parking lot" analysis.

The paper observed that "the queuing latencies for the router
input-ports were highly unbalanced, with the cubes closer to the
processor showing more problems": a locally-fair round-robin gives each
input queue equal service, but the transit queue from deeper cubes
carries far more flows than any local vault queue, so its packets wait
disproportionately.  This module extracts exactly that evidence from a
finished simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.tables import render_table
from repro.memory.cube import LOCAL_INPUTS
from repro.topology.base import NodeKind
from repro.units import to_ns


@dataclass(frozen=True)
class RouterQueueWaits:
    """Mean input-queue waits at one cube's router, split by role."""

    node_id: int
    distance: int
    local_wait_ns: float  # the 4 vault-response injection queues
    transit_wait_ns: float  # queues fed by other packages
    local_popped: int
    transit_popped: int

    @property
    def imbalance(self) -> float:
        """Transit/local wait ratio (>1 means transit packets starve)."""
        if self.local_wait_ns <= 0:
            return float("inf") if self.transit_wait_ns > 0 else 1.0
        return self.transit_wait_ns / self.local_wait_ns


def cube_queue_waits(system) -> List[RouterQueueWaits]:
    """Per-cube local-vs-transit queue waits (needs a finished run)."""
    reports = []
    for node_id, cube in sorted(system.cubes.items()):
        router = cube.router
        local = router.inputs[:LOCAL_INPUTS]
        transit = router.inputs[LOCAL_INPUTS:]

        def fold(queues):
            wait = sum(q.total_wait_ps for q in queues)
            popped = sum(q.popped for q in queues)
            return (to_ns(wait) / popped if popped else 0.0), popped

        local_wait, local_popped = fold(local)
        transit_wait, transit_popped = fold(transit)
        reports.append(
            RouterQueueWaits(
                node_id=node_id,
                distance=system.route_table.distance(node_id),
                local_wait_ns=local_wait,
                transit_wait_ns=transit_wait,
                local_popped=local_popped,
                transit_popped=transit_popped,
            )
        )
    return reports


def mean_transit_wait_ns(system) -> float:
    """Traffic-weighted mean transit-queue wait across the MN."""
    total_wait = 0.0
    total_popped = 0
    for report in cube_queue_waits(system):
        total_wait += report.transit_wait_ns * report.transit_popped
        total_popped += report.transit_popped
    return total_wait / total_popped if total_popped else 0.0


def render_parking_lot_report(system) -> str:
    rows = []
    for report in cube_queue_waits(system):
        rows.append(
            [
                f"cube{report.node_id}",
                report.distance,
                f"{report.local_wait_ns:.2f}",
                f"{report.transit_wait_ns:.2f}",
                "-" if report.transit_popped == 0 else f"{report.imbalance:.2f}x",
            ]
        )
    return render_table(
        ["cube", "hops", "local wait (ns)", "transit wait (ns)", "imbalance"],
        rows,
        title="Parking-lot analysis: router input-queue waits (Section 3.2)",
    )
