"""Result analysis: tables, speedup grids, latency breakdowns."""

from repro.analysis.tables import render_table, format_percent
from repro.analysis.speedup import SpeedupGrid
from repro.analysis.breakdown import breakdown_rows

__all__ = ["render_table", "format_percent", "SpeedupGrid", "breakdown_rows"]
