"""Shared parsing for ``REPRO_*`` environment variables.

Environment switches are read in several subsystems (``repro.check``
reads ``REPRO_AUDIT``, the runner reads ``REPRO_JOBS``, the engine
factory reads ``REPRO_ENGINE``).  Boolean flags in particular are easy
to get wrong: ``REPRO_AUDIT=false`` is truthy under a naive
``value != "0"`` test.  :func:`env_flag` gives every flag one spelling
of the truth.

Accepted spellings (case-insensitive, surrounding whitespace ignored):

* true:  ``1``, ``true``, ``yes``, ``on``
* false: ``0``, ``false``, ``no``, ``off``

An unset or empty variable yields ``default``.  Anything else also
yields ``default`` but emits a :class:`RuntimeWarning` — once per
variable per process, so a misspelled flag in a sweep does not flood
stderr.
"""

from __future__ import annotations

import os
import warnings
from typing import Set

_TRUE_WORDS = frozenset(("1", "true", "yes", "on"))
_FALSE_WORDS = frozenset(("0", "false", "no", "off"))

_warned_vars: Set[str] = set()


def _warn_once(name: str, message: str) -> None:
    """Emit ``message`` as a RuntimeWarning once per variable."""
    if name in _warned_vars:
        return
    _warned_vars.add(name)
    warnings.warn(message, RuntimeWarning, stacklevel=3)


def env_flag(name: str, default: bool = False) -> bool:
    """Parse the boolean environment variable ``name``.

    Unset/empty returns ``default``; unrecognized spellings warn once
    and return ``default``.
    """
    raw = os.environ.get(name)
    if raw is None:
        return default
    value = raw.strip().lower()
    if not value:
        return default
    if value in _TRUE_WORDS:
        return True
    if value in _FALSE_WORDS:
        return False
    _warn_once(
        name,
        f"ignoring unrecognized {name}={raw!r} "
        "(expected one of 1/true/yes/on or 0/false/no/off); "
        f"using default {default}",
    )
    return default


def reset_warnings() -> None:
    """Forget which variables have warned (test isolation)."""
    _warned_vars.clear()
