"""Generic design-space sweeps over :class:`SystemConfig` fields.

The experiment modules cover the paper's specific figures; this utility
lets users explore their own design spaces:

>>> from repro.sweep import Sweep
>>> sweep = (Sweep(get_workload("KMEANS"), requests=500)
...          .over("topology", ["chain", "tree"])
...          .over("dram_fraction", [1.0, 0.5]))
>>> rows = sweep.run()                          # doctest: +SKIP

Each axis names either a top-level ``SystemConfig`` field or a dotted
sub-config field (``host.num_ports``, ``link.serdes_latency_ps``,
``cube.scheduling``).  The cartesian product is simulated and returned
as result rows ready for tabulation or CSV export.
"""

from __future__ import annotations

import itertools
from dataclasses import replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.tables import render_table
from repro.config import SystemConfig
from repro.errors import ConfigError
from repro.results import SimResult
from repro.runner import JobFailure, ParallelRunner, SimJob, get_runner
from repro.workloads import WorkloadSpec


def set_config_field(config: SystemConfig, path: str, value: Any) -> SystemConfig:
    """Return a config copy with a (possibly dotted) field replaced."""
    if "." in path:
        head, _, rest = path.partition(".")
        if not hasattr(config, head):
            raise ConfigError(f"unknown config section {head!r}")
        sub = getattr(config, head)
        if not hasattr(sub, rest):
            raise ConfigError(f"unknown field {rest!r} in {head!r}")
        return config.with_(**{head: replace(sub, **{rest: value})})
    if not hasattr(config, path):
        raise ConfigError(f"unknown config field {path!r}")
    return config.with_(**{path: value})


class Sweep:
    """Cartesian-product sweep runner."""

    def __init__(
        self,
        workload: WorkloadSpec,
        requests: int = 1000,
        base_config: Optional[SystemConfig] = None,
    ) -> None:
        self.workload = workload
        self.requests = requests
        self.base_config = base_config or SystemConfig()
        self.axes: List[Tuple[str, List[Any]]] = []

    def over(self, field: str, values: Sequence[Any]) -> "Sweep":
        """Add an axis; returns self for chaining."""
        if not values:
            raise ConfigError(f"axis {field!r} needs at least one value")
        self.axes.append((field, list(values)))
        return self

    def points(self) -> List[Dict[str, Any]]:
        names = [name for name, _ in self.axes]
        combos = itertools.product(*(values for _, values in self.axes))
        return [dict(zip(names, combo)) for combo in combos]

    def config_for(self, point: Dict[str, Any]) -> SystemConfig:
        config = self.base_config
        for field, value in point.items():
            config = set_config_field(config, field, value)
        return config

    def run(
        self,
        skip_invalid: bool = True,
        jobs: Optional[int] = None,
    ) -> List[Dict[str, Any]]:
        """Simulate every point; returns rows of axis values + metrics.

        Points whose configuration cannot be built (e.g. a DRAM fraction
        that does not decompose into whole cubes) are skipped when
        ``skip_invalid`` is set, recorded with ``error`` otherwise.

        Valid points are validated up front and dispatched as one batch
        through the runner, so identical points are simulated once and
        ``jobs > 1`` spreads the batch over worker processes.  ``jobs``
        defaults to the ambient runner's worker count.
        """
        rows: List[Dict[str, Any]] = []
        batch: List[SimJob] = []
        slots: List[Dict[str, Any]] = []  # rows awaiting their result
        for point in self.points():
            try:
                config = self.config_for(point)
                config.validate()
            except ConfigError as error:
                if skip_invalid:
                    continue
                rows.append(dict(point, error=str(error)))
                continue
            row = dict(point)
            rows.append(row)
            slots.append(row)
            batch.append(
                SimJob(config=config, workload=self.workload, requests=self.requests)
            )
        runner = get_runner()
        if jobs is not None and jobs != runner.jobs:
            runner = ParallelRunner(
                jobs=jobs, cache=runner.cache, job_timeout_s=runner.job_timeout_s
            )
        # collect mode: a crashed or timed-out point becomes an error row
        # instead of losing the rest of the sweep.
        for row, result in zip(slots, runner.run(batch, on_error="collect")):
            if isinstance(result, JobFailure):
                row["error"] = f"{result.kind}: {result.error}"
            else:
                row.update(_metrics(result))
        return rows

    def render(self, rows: Optional[List[Dict[str, Any]]] = None) -> str:
        rows = self.run() if rows is None else rows
        if not rows:
            return "(no valid sweep points)"
        axis_names = [name for name, _ in self.axes]
        headers = axis_names + ["runtime_us", "latency_ns", "energy_uj"]
        table_rows = []
        for row in rows:
            cells = [str(row.get(name)) for name in axis_names]
            if "error" in row:
                # Invalid points (run(skip_invalid=False)) have no
                # metrics; show the reason instead of formatted NaNs.
                message = str(row["error"])
                if len(message) > 40:
                    message = message[:37] + "..."
                cells += [f"error: {message}", "-", "-"]
            else:
                cells += [
                    f"{row['runtime_us']:.2f}",
                    f"{row['latency_ns']:.1f}",
                    f"{row['energy_uj']:.2f}",
                ]
            table_rows.append(cells)
        return render_table(headers, table_rows, title=f"Sweep ({self.workload.name})")


def _metrics(result: SimResult) -> Dict[str, float]:
    return {
        "label": result.config_label,
        "runtime_us": result.runtime_ns / 1000.0,
        "latency_ns": result.mean_latency_ns,
        "row_hit_rate": result.row_hit_rate,
        "energy_uj": result.energy.total_pj / 1e6,
        "mean_hops": result.collector.request_hops.mean,
    }
