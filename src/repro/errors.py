"""Exception hierarchy for the repro package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """A configuration value is missing, inconsistent, or out of range."""


class TopologyError(ReproError):
    """A topology cannot be constructed (port budget, cube count, ...)."""


class RoutingError(ReproError):
    """No route exists for a packet, or a route table is inconsistent."""


class SimulationError(ReproError):
    """The simulation reached an invalid state (deadlock, lost packet)."""


class InvariantViolation(SimulationError):
    """A conservation/ordering invariant failed during an audited run.

    Raised by :class:`repro.check.InvariantAuditor`.  Carries the
    structured context needed to reproduce the failing run: each entry in
    ``violations`` is a ``(invariant, component, detail)`` triple, and
    ``context`` holds the audit point, simulated time, config label,
    workload, seed, scheduler, and request count.
    """

    def __init__(self, violations, context):
        self.violations = list(violations)
        self.context = dict(context)
        names = sorted({invariant for invariant, _, _ in self.violations})
        lines = [
            f"{len(self.violations)} invariant violation(s) "
            f"[{', '.join(names)}] at {self.context.get('point', '?')} "
            f"(t={self.context.get('time_ps', '?')} ps)"
        ]
        for invariant, component, detail in self.violations:
            lines.append(f"  - {invariant} @ {component}: {detail}")
        lines.append(
            "  context: "
            + ", ".join(f"{k}={v}" for k, v in sorted(self.context.items()))
        )
        super().__init__("\n".join(lines))

    def invariants(self):
        """Sorted unique names of the failed invariants."""
        return sorted({invariant for invariant, _, _ in self.violations})


class WorkloadError(ReproError):
    """A workload specification or trace is invalid."""


class RunnerError(ReproError):
    """A batch job failed to execute (worker crash, timeout, bad job)."""
