"""Exception hierarchy for the repro package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """A configuration value is missing, inconsistent, or out of range."""


class TopologyError(ReproError):
    """A topology cannot be constructed (port budget, cube count, ...)."""


class RoutingError(ReproError):
    """No route exists for a packet, or a route table is inconsistent."""


class SimulationError(ReproError):
    """The simulation reached an invalid state (deadlock, lost packet)."""


class WorkloadError(ReproError):
    """A workload specification or trace is invalid."""


class RunnerError(ReproError):
    """A batch job failed to execute (worker crash, timeout, bad job)."""
