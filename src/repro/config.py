"""Configuration dataclasses and paper-parameter presets.

All defaults come from Table 2 of the paper and the prose of Section 5:

* 2 TB total memory behind 8 host ports (16 GB DRAM / 64 GB NVM cubes),
* 256 banks per stack split over 4 quadrants,
* DRAM timings tRCD=12 ns, tCL=6 ns, tRP=14 ns, tRAS=33 ns,
* NVM timings tRCD=40 ns, tCL=10 ns, tWR=320 ns,
* 16-bit links at 15 Gbps with a 2 ns SerDes latency per traversal,
* data packets 5x the size of control packets,
* 1 ns penalty for requests arriving at the wrong quadrant,
* network energy 5 pJ/bit/hop; DRAM 12 pJ/bit; NVM 12 / 120 pJ/bit (r/w),
* 256 B address interleaving across ports and cubes.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.errors import ConfigError
from repro.ras.plan import FaultPlan
from repro.units import BYTE, GIB_BYTES, TIB_BYTES, ns


# ---------------------------------------------------------------------------
# Link / packet parameters
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class LinkConfig:
    """A point-to-point SerDes link between packages (or to the host)."""

    lanes: int = 16
    lane_gbps: float = 15.0
    serdes_latency_ps: int = ns(2.0)
    propagation_ps: int = 0
    input_buffer_packets: int = 8
    # The paper's packages are joined by a *single* 16-bit link whose
    # bandwidth is shared by both directions (Section 5); responses are
    # prioritized on it (Section 3.2).  True gives each direction its
    # own serializer instead.
    full_duplex: bool = False

    def validate(self) -> None:
        if self.lanes <= 0 or self.lane_gbps <= 0:
            raise ConfigError("link lanes and speed must be positive")
        if self.input_buffer_packets < 1:
            raise ConfigError("links need at least one input buffer slot")


@dataclass(frozen=True)
class InterposerLinkConfig(LinkConfig):
    """Wide, short link across a silicon interposer (inside a MetaCube).

    No SerDes is needed on-interposer; the link is much wider than the
    external 16-lane SerDes link, so serialization time is small.
    """

    lanes: int = 128
    lane_gbps: float = 8.0
    serdes_latency_ps: int = ns(0.5)
    full_duplex: bool = True  # interposer wires are point-to-point pairs


@dataclass(frozen=True)
class PacketConfig:
    """Packet sizing: data packets are 5x control packets (Section 3.2)."""

    control_bytes: int = 16
    data_multiplier: int = 5
    payload_bytes: int = 64  # one cache line of data per read/write

    @property
    def control_bits(self) -> int:
        return self.control_bytes * BYTE

    @property
    def data_bits(self) -> int:
        return self.control_bytes * self.data_multiplier * BYTE

    def validate(self) -> None:
        if self.control_bytes <= 0 or self.data_multiplier < 1:
            raise ConfigError("packet sizes must be positive")


# ---------------------------------------------------------------------------
# Memory technologies
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class MemTechConfig:
    """Timing and energy model of one memory technology."""

    name: str
    capacity_bytes: int
    trcd_ps: int
    tcl_ps: int
    trp_ps: int
    tras_ps: int
    twr_ps: int
    read_energy_pj_per_bit: float
    write_energy_pj_per_bit: float
    needs_refresh: bool = True
    refresh_interval_ps: int = 0
    refresh_duration_ps: int = 0
    is_nonvolatile: bool = False
    # Row buffers per bank.  PCM-style NVMs decouple sensing from
    # buffering and afford several row buffers per bank (Lee et al.,
    # ISCA'09 — the paper's reference [28]); DRAM keeps one.
    row_buffers: int = 1

    def validate(self) -> None:
        if self.row_buffers < 1:
            raise ConfigError(f"{self.name}: need at least one row buffer")
        if self.capacity_bytes <= 0:
            raise ConfigError(f"{self.name}: capacity must be positive")
        for label, value in (
            ("tRCD", self.trcd_ps),
            ("tCL", self.tcl_ps),
            ("tRP", self.trp_ps),
            ("tWR", self.twr_ps),
        ):
            if value < 0:
                raise ConfigError(f"{self.name}: {label} cannot be negative")
        if self.needs_refresh and self.refresh_interval_ps <= 0:
            raise ConfigError(f"{self.name}: refreshing tech needs an interval")

    # convenience latencies -------------------------------------------------
    def row_hit_read_ps(self) -> int:
        return self.tcl_ps

    def row_miss_read_ps(self) -> int:
        return self.trp_ps + self.trcd_ps + self.tcl_ps

    def row_hit_write_ps(self) -> int:
        return self.tcl_ps

    def row_miss_write_ps(self) -> int:
        return self.trp_ps + self.trcd_ps + self.tcl_ps

    def write_recovery_ps(self) -> int:
        """Bank occupancy after a write completes (dominant for PCM)."""
        return self.twr_ps


def dram_tech(capacity_gib: int = 16) -> MemTechConfig:
    """Baseline HBM-like DRAM cube (Table 2)."""
    return MemTechConfig(
        name="DRAM",
        capacity_bytes=capacity_gib * GIB_BYTES,
        trcd_ps=ns(12),
        tcl_ps=ns(6),
        trp_ps=ns(14),
        tras_ps=ns(33),
        twr_ps=ns(15),
        read_energy_pj_per_bit=12.0,
        write_energy_pj_per_bit=12.0,
        needs_refresh=True,
        refresh_interval_ps=ns(7800),
        refresh_duration_ps=ns(350),
        is_nonvolatile=False,
    )


def nvm_tech(capacity_gib: int = 64) -> MemTechConfig:
    """PCM-like NVM cube: 4x density, slower array, 10x write energy."""
    return MemTechConfig(
        name="NVM",
        capacity_bytes=capacity_gib * GIB_BYTES,
        trcd_ps=ns(40),
        tcl_ps=ns(10),
        trp_ps=ns(0),
        tras_ps=ns(0),
        twr_ps=ns(320),
        read_energy_pj_per_bit=12.0,
        write_energy_pj_per_bit=120.0,
        needs_refresh=False,
        refresh_interval_ps=0,
        refresh_duration_ps=0,
        is_nonvolatile=True,
        row_buffers=4,
    )


# ---------------------------------------------------------------------------
# Cube organization
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class CubeConfig:
    """Internal organization of a memory cube (HMC-like)."""

    num_quadrants: int = 4
    banks_per_stack: int = 256
    external_ports: int = 4
    row_bytes: int = 2048
    wrong_quadrant_penalty_ps: int = ns(1.0)
    controller_queue_depth: int = 32
    # Controller scheduling: "fcfs" issues strictly in arrival order
    # (one blocked head stalls the quadrant, as in simple vault
    # controllers); "frfcfs" lets ready requests bypass a blocked head.
    scheduling: str = "fcfs"

    @property
    def banks_per_quadrant(self) -> int:
        return self.banks_per_stack // self.num_quadrants

    def validate(self) -> None:
        if self.num_quadrants <= 0:
            raise ConfigError("cube needs at least one quadrant")
        if self.banks_per_stack % self.num_quadrants:
            raise ConfigError("banks must divide evenly across quadrants")
        if self.external_ports < 2:
            raise ConfigError("cube needs >= 2 external ports to form networks")
        if self.scheduling not in ("fcfs", "frfcfs"):
            raise ConfigError(f"unknown scheduling policy {self.scheduling!r}")


# ---------------------------------------------------------------------------
# Host / APU
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class HostConfig:
    """The APU side: memory ports, windows, and address interleaving."""

    num_ports: int = 8
    interleave_bytes: int = 256
    max_outstanding_per_port: int = 64
    # Writes retire from the core's perspective once handed to the
    # memory system ("off the critical path", Section 4.2); the store
    # buffer bounds how many may be in flight concurrently.
    store_buffer_entries: int = 64
    inject_queue_depth: int = 64
    read_priority_injection: bool = False
    # On-chip latency between the coherence point (L2/directory) and the
    # memory port, each direction.  Part of every end-to-end memory
    # latency the paper reports; common to all MN configurations.
    port_latency_ps: int = 50_000
    # GPU wavefronts retire loads in order: a window slot frees only
    # once all older reads have also returned, so *tail* latency (what
    # unfair arbitration inflates and distance-based arbitration fixes)
    # throttles the core, not just the mean.
    inorder_retire: bool = True

    def validate(self) -> None:
        if self.num_ports <= 0:
            raise ConfigError("host needs at least one memory port")
        if self.interleave_bytes & (self.interleave_bytes - 1):
            raise ConfigError("interleave granularity must be a power of two")
        if self.max_outstanding_per_port < 1:
            raise ConfigError("window must allow at least one request")


# ---------------------------------------------------------------------------
# Energy
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class EnergyConfig:
    network_pj_per_bit_hop: float = 5.0


# ---------------------------------------------------------------------------
# Observability
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ObsConfig:
    """Opt-in observability: latency attribution and event tracing.

    Everything here defaults to *off*; the simulator's hot paths then pay
    at most a ``None``/flag check per event (the zero-overhead guard
    benchmarked by ``benchmarks/bench_runner.py``).

    ``attribution`` makes every transaction accumulate timestamped
    latency segments (see :mod:`repro.obs.attribution`), which surface as
    per-segment histograms on the result's collector.  ``trace`` attaches
    a ring-buffered :class:`repro.obs.TraceRecorder` to the engine,
    links, routers and queues; with ``trace_dir`` set, each run dumps
    ``trace_<label>_<workload>.jsonl`` and a Chrome-loadable
    ``trace_<label>_<workload>.json`` there.  Note that cache-served
    (warm) runs do not re-simulate and therefore do not rewrite traces.

    ``attribution_sample = N`` records segments for a deterministic
    1-in-N subset of transactions (stride sampling; the phase derives
    from ``config.seed``, so reruns sample the same transactions).
    Sampled-in transactions record *exact* segments — sampling shrinks
    the histogram population, it never estimates durations — and the
    simulated schedule is bit-identical to an attribution-off run.
    ``attribution_labels`` restricts recording to labels under the
    given taxonomy prefixes (e.g. ``("mem.xfer",)`` keeps only the p2p
    data leg); masked-out spans are still counted toward coverage so
    the ``unattributed`` residual keeps meaning "instrumentation gap".
    ``trace_sample = N`` rings every Nth event only, while the
    whole-run aggregates (link busy/bits, queue peaks, replay and
    overload counters) remain exact counts.
    """

    attribution: bool = False
    attribution_sample: int = 1
    attribution_labels: Optional[Tuple[str, ...]] = None
    trace: bool = False
    trace_ring: int = 1 << 16
    trace_sample: int = 1
    trace_dir: Optional[str] = None
    # Also record every engine event dispatch (very chatty; floods the
    # ring long before link/queue events would).
    trace_engine_events: bool = False

    @property
    def enabled(self) -> bool:
        return self.attribution or self.trace

    def validate(self) -> None:
        if self.trace_ring < 1:
            raise ConfigError("trace ring capacity must be at least 1")
        if self.attribution_sample < 1:
            raise ConfigError("attribution_sample must be at least 1")
        if self.trace_sample < 1:
            raise ConfigError("trace_sample must be at least 1")
        if self.attribution_labels is not None:
            if not self.attribution_labels or not all(
                isinstance(p, str) and p for p in self.attribution_labels
            ):
                raise ConfigError(
                    "attribution_labels must be a non-empty tuple of "
                    "label prefixes (e.g. ('mem.xfer', 'resp'))"
                )
            for prefix in self.attribution_labels:
                # Prefixes match at dot boundaries, so a trailing dot can
                # never match anything ("mem." + "." is not a prefix of
                # "mem.queue").  Reject it rather than silently record
                # nothing.
                if prefix.endswith("."):
                    raise ConfigError(
                        f"attribution_labels prefix {prefix!r} must not end "
                        "with '.' (write 'mem', not 'mem.')"
                    )


# ---------------------------------------------------------------------------
# Overload robustness (host-edge deadlines, retry, admission control)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class OverloadConfig:
    """Host-edge overload behaviour: deadlines, retry, load shedding.

    Everything defaults to *off*: a default instance adds no events, no
    counters in results, and is omitted from job digests entirely, so
    pre-overload digests and golden corpora stay bit-identical.

    ``deadline_ps`` arms an end-to-end timer per generated request.  A
    request still queued at the host edge when its deadline fires is
    abandoned (the client gave up while it waited for admission); a
    request already in service is cancelled — its window slot and
    directory claim are released, any in-flight packets become stale and
    are dropped on arrival — and retried after a deterministic
    exponential backoff (``retry_backoff_ps * 2**attempt``) up to
    ``max_retries`` times before it is abandoned for good.

    ``shed_high`` / ``shed_low`` are hysteresis watermarks over the
    requests *in the system* (host-edge backlog plus outstanding): when
    the count reaches ``shed_high`` at an arrival, admission closes and
    new requests are counted as shed until it falls back to
    ``shed_low``.  This bounds the backlog at ``shed_high`` and turns
    goodput collapse into a plateau (see ``docs/ras.md``).
    """

    #: End-to-end request deadline; 0 disables timeouts entirely.
    deadline_ps: int = 0
    #: Retry budget for requests cancelled in service (0 = no retries).
    max_retries: int = 0
    #: Backoff before retry ``k`` is re-queued: ``retry_backoff_ps << k``.
    retry_backoff_ps: int = ns(200)
    #: Admission closes when pending + outstanding reaches this; 0
    #: disables shedding.
    shed_high: int = 0
    #: Admission reopens once pending + outstanding falls to this.
    shed_low: int = 0

    @property
    def deadlines_enabled(self) -> bool:
        return self.deadline_ps > 0

    @property
    def shedding_enabled(self) -> bool:
        return self.shed_high > 0

    @property
    def enabled(self) -> bool:
        return self.deadlines_enabled or self.shedding_enabled

    def validate(self) -> None:
        if self.deadline_ps < 0:
            raise ConfigError("overload: deadline_ps cannot be negative")
        if self.max_retries < 0:
            raise ConfigError("overload: max_retries cannot be negative")
        if self.retry_backoff_ps < 0:
            raise ConfigError("overload: retry_backoff_ps cannot be negative")
        if self.shed_high < 0:
            raise ConfigError("overload: shed_high cannot be negative")
        if self.shed_low < 0:
            raise ConfigError("overload: shed_low cannot be negative")
        if self.shed_high and self.shed_low > self.shed_high:
            raise ConfigError(
                "overload: shed_low must not exceed shed_high "
                f"({self.shed_low} > {self.shed_high})"
            )
        if self.max_retries and not self.deadlines_enabled:
            raise ConfigError(
                "overload: max_retries needs a deadline to trigger retries"
            )


# ---------------------------------------------------------------------------
# Arbitration / topology identifiers
# ---------------------------------------------------------------------------
ARBITER_ROUND_ROBIN = "round_robin"
ARBITER_DISTANCE = "distance"
ARBITER_DISTANCE_ENHANCED = "distance_enhanced"
ARBITER_AGE = "age"
ARBITER_GLOBAL_WEIGHTED = "global_weighted"

VALID_ARBITERS = (
    ARBITER_ROUND_ROBIN,
    ARBITER_DISTANCE,
    ARBITER_DISTANCE_ENHANCED,
    ARBITER_AGE,
    ARBITER_GLOBAL_WEIGHTED,
)

TOPOLOGY_CHAIN = "chain"
TOPOLOGY_RING = "ring"
TOPOLOGY_TREE = "tree"
TOPOLOGY_SKIPLIST = "skiplist"
TOPOLOGY_METACUBE = "metacube"

VALID_TOPOLOGIES = (
    TOPOLOGY_CHAIN,
    TOPOLOGY_RING,
    TOPOLOGY_TREE,
    TOPOLOGY_SKIPLIST,
    TOPOLOGY_METACUBE,
)

NVM_LAST = "last"
NVM_FIRST = "first"

# Peer-to-peer copy destination patterns (see SystemConfig.p2p_pattern)
P2P_NEIGHBOR = "neighbor"
P2P_SHUFFLE = "shuffle"
P2P_PROMOTE = "promote"

VALID_P2P_PATTERNS = (P2P_NEIGHBOR, P2P_SHUFFLE, P2P_PROMOTE)


# ---------------------------------------------------------------------------
# Top-level system configuration
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SystemConfig:
    """Everything needed to instantiate one memory-network simulation.

    A simulation models **one host port's MN**; ports serve disjoint
    address slices (Section 2.3), so per-port behaviour composes to the
    full system.  ``host.num_ports`` still matters: it divides the total
    capacity (setting the per-port cube count) and concentrates the
    workload's offered load onto fewer injectors when reduced.
    """

    topology: str = TOPOLOGY_CHAIN
    total_capacity_bytes: int = 2 * TIB_BYTES
    dram_fraction: float = 1.0  # fraction of capacity from DRAM
    nvm_placement: str = NVM_LAST
    arbiter: str = ARBITER_ROUND_ROBIN
    link: LinkConfig = field(default_factory=LinkConfig)
    interposer_link: LinkConfig = field(default_factory=InterposerLinkConfig)
    packet: PacketConfig = field(default_factory=PacketConfig)
    cube: CubeConfig = field(default_factory=CubeConfig)
    host: HostConfig = field(default_factory=HostConfig)
    energy: EnergyConfig = field(default_factory=EnergyConfig)
    obs: ObsConfig = field(default_factory=ObsConfig)
    dram: MemTechConfig = field(default_factory=dram_tech)
    nvm: MemTechConfig = field(default_factory=nvm_tech)
    metacube_arity: int = 4
    seed: int = 20170624  # ISCA'17 opening day
    capacity_scale: float = 1.0  # Fig 14: scale capacity w/ same cube count
    # Section 5.3 skip-list refinement: during write bursts at the system
    # port, writes are temporarily re-admitted to the short skip paths.
    write_skip_hysteresis: bool = False
    hysteresis_hi: float = 0.60
    hysteresis_lo: float = 0.45
    hysteresis_window: int = 64
    # RAS experiments (the paper's footnote 3): links listed here are
    # treated as failed and removed before routes are computed.  Routing
    # fails loudly if a cube becomes unreachable (chains cannot tolerate
    # failures; rings and skip-lists can).
    failed_links: Tuple[Tuple[int, int], ...] = ()
    # Runtime fault plan (repro.ras): transient link bit errors with
    # retry-buffer replay and permanent failures scheduled *mid-run*,
    # which degrade gracefully instead of raising.  Default off.
    ras: FaultPlan = field(default_factory=FaultPlan)
    # Host-edge overload behaviour (repro host.port): end-to-end request
    # deadlines with bounded retry, and admission-control watermarks that
    # shed load once the edge backlog crosses shed_high.  Default off;
    # a default instance is omitted from job digests entirely.
    overload: OverloadConfig = field(default_factory=OverloadConfig)
    # Fraction of transactions excluded from latency/energy statistics
    # as cache/queue warm-up (they are still simulated and still count
    # toward runtime).
    warmup_fraction: float = 0.0
    # Destination-selection pattern for peer-to-peer copies (NOM-style
    # cube-to-cube DMA; active only when the workload's p2p_fraction is
    # non-zero): "neighbor" copies to the next cube in address-map
    # order, "shuffle" to the farthest rotation (bisection stress), and
    # "promote" moves lines to the opposite memory tier (hot-page
    # promotion NVM -> DRAM, with DRAM -> NVM demotions making room).
    p2p_pattern: str = P2P_NEIGHBOR

    # ------------------------------------------------------------------
    def validate(self) -> None:
        if self.topology not in VALID_TOPOLOGIES:
            raise ConfigError(f"unknown topology {self.topology!r}")
        if self.arbiter not in VALID_ARBITERS:
            raise ConfigError(f"unknown arbiter {self.arbiter!r}")
        if not 0.0 <= self.dram_fraction <= 1.0:
            raise ConfigError("dram_fraction must be within [0, 1]")
        if self.nvm_placement not in (NVM_LAST, NVM_FIRST):
            raise ConfigError(f"unknown NVM placement {self.nvm_placement!r}")
        if self.capacity_scale <= 0:
            raise ConfigError("capacity_scale must be positive")
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ConfigError("warmup_fraction must be in [0, 1)")
        if self.p2p_pattern not in VALID_P2P_PATTERNS:
            raise ConfigError(f"unknown p2p pattern {self.p2p_pattern!r}")
        self.link.validate()
        self.obs.validate()
        self.ras.validate()
        self.overload.validate()
        self.packet.validate()
        self.cube.validate()
        self.host.validate()
        self.dram.validate()
        self.nvm.validate()
        # the per-port capacity must decompose into whole cubes
        self.cube_counts()
        self._validate_failed_links()

    def _validate_failed_links(self) -> None:
        """Structural checks on ``failed_links`` and the RAS fault plan.

        Runs after :meth:`cube_counts` so the node-id range is known:
        node 0 is the host, cubes are 1..N, and MetaCube interface-chip
        switches follow the cubes.
        """
        max_node = self.cubes_per_port
        if self.topology == TOPOLOGY_METACUBE:
            arity = max(self.metacube_arity, 1)
            max_node += -(-self.cubes_per_port // arity)  # switch count
        seen = set()
        for pair in self.failed_links:
            if len(pair) != 2:
                raise ConfigError(f"failed link {pair!r} must be a node pair")
            a, b = pair
            for node in (a, b):
                if not isinstance(node, int):
                    raise ConfigError(
                        f"failed link {pair!r}: endpoints must be node ids"
                    )
                if not 0 <= node <= max_node:
                    raise ConfigError(
                        f"failed link {pair!r}: node {node} is out of range "
                        f"(this topology has nodes 0..{max_node})"
                    )
            if a == b:
                raise ConfigError(f"failed link {pair!r} is a self-loop")
            key = frozenset((a, b))
            if key in seen:
                raise ConfigError(f"duplicate failed link {a}-{b}")
            seen.add(key)
        for a, b, _time in self.ras.link_failures:
            for node in (a, b):
                if node > max_node:
                    raise ConfigError(
                        f"ras: link failure {a}-{b}: node {node} is out of "
                        f"range (this topology has nodes 0..{max_node})"
                    )
        for cube, _time in self.ras.cube_failures:
            if cube > self.cubes_per_port:
                raise ConfigError(
                    f"ras: cube failure {cube}: this topology has cubes "
                    f"1..{self.cubes_per_port}"
                )

    # ------------------------------------------------------------------
    @property
    def per_port_capacity_bytes(self) -> int:
        return self.total_capacity_bytes // self.host.num_ports

    def cube_counts(self) -> Tuple[int, int]:
        """Return ``(num_dram_cubes, num_nvm_cubes)`` for one port.

        The ratio is expressed by *capacity* (Section 3.3): a 50% MN has
        half its bytes in DRAM cubes and half in NVM cubes.
        """
        per_port = self.per_port_capacity_bytes
        dram_bytes = per_port * self.dram_fraction
        nvm_bytes = per_port - dram_bytes
        n_dram = dram_bytes / self.dram.capacity_bytes
        n_nvm = nvm_bytes / self.nvm.capacity_bytes
        if abs(n_dram - round(n_dram)) > 1e-9 or abs(n_nvm - round(n_nvm)) > 1e-9:
            raise ConfigError(
                f"capacity split {self.dram_fraction:.2f} does not decompose "
                f"into whole cubes ({n_dram:.3f} DRAM, {n_nvm:.3f} NVM)"
            )
        n_dram_i, n_nvm_i = int(round(n_dram)), int(round(n_nvm))
        if n_dram_i + n_nvm_i == 0:
            raise ConfigError("configuration yields zero memory cubes")
        return n_dram_i, n_nvm_i

    @property
    def cubes_per_port(self) -> int:
        d, n = self.cube_counts()
        return d + n

    # ------------------------------------------------------------------
    def label(self) -> str:
        """Paper-style label, e.g. ``50%-T (NVM-L)``."""
        percent = int(round(self.dram_fraction * 100))
        letter = {
            TOPOLOGY_CHAIN: "C",
            TOPOLOGY_RING: "R",
            TOPOLOGY_TREE: "T",
            TOPOLOGY_SKIPLIST: "SL",
            TOPOLOGY_METACUBE: "MC",
        }[self.topology]
        base = f"{percent}%-{letter}"
        if 0 < self.dram_fraction < 1:
            suffix = "L" if self.nvm_placement == NVM_LAST else "F"
            base += f" (NVM-{suffix})"
        return base

    def with_(self, **changes) -> "SystemConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    def with_obs(self, **changes) -> "SystemConfig":
        """Return a copy with observability fields replaced."""
        return replace(self, obs=replace(self.obs, **changes))

    def with_ras(self, **changes) -> "SystemConfig":
        """Return a copy with fault-plan (RAS) fields replaced."""
        return replace(self, ras=replace(self.ras, **changes))

    def with_overload(self, **changes) -> "SystemConfig":
        """Return a copy with overload (deadline/shedding) fields replaced."""
        return replace(self, overload=replace(self.overload, **changes))


_LABEL_RE = re.compile(
    r"^\s*(?P<pct>\d+)%-(?P<topo>C|R|T|SL|MC)"
    r"(?:\s*\(NVM-(?P<plc>[LF])\))?\s*$",
    re.IGNORECASE,
)

_LETTER_TO_TOPOLOGY = {
    "C": TOPOLOGY_CHAIN,
    "R": TOPOLOGY_RING,
    "T": TOPOLOGY_TREE,
    "SL": TOPOLOGY_SKIPLIST,
    "MC": TOPOLOGY_METACUBE,
}


def parse_label(label: str, base: Optional[SystemConfig] = None) -> SystemConfig:
    """Parse a paper-style config label like ``"50%-T (NVM-L)"``.

    ``base`` supplies every parameter the label does not encode.
    """
    match = _LABEL_RE.match(label)
    if match is None:
        raise ConfigError(f"cannot parse configuration label {label!r}")
    base = base or SystemConfig()
    fraction = int(match.group("pct")) / 100.0
    topology = _LETTER_TO_TOPOLOGY[match.group("topo").upper()]
    placement = base.nvm_placement
    if match.group("plc"):
        placement = NVM_LAST if match.group("plc").upper() == "L" else NVM_FIRST
    return base.with_(
        topology=topology, dram_fraction=fraction, nvm_placement=placement
    )
