"""P2P ablation — cube-to-cube copies vs host-mediated traffic.

Sweeps the peer-to-peer copy fraction over the four mixed-tier
topologies (50%-C/R/SL/MC, NVM-last) with the ``promote`` pattern, so
every copy moves a hot page from the NVM tier to the DRAM tier without
a round trip through the host.  Two effects to watch:

* **Runtime**: each copy replaces a host-mediated read (data hauled
  all the way back over the host SerDes links) with a small request, an
  intra-network transfer, and a small ack — the data never crosses the
  host links at all.  Runtime therefore *improves* as the copy fraction
  grows, because the scarcest resource in every mixed-tier config is
  host-link bandwidth.
* **Transfer locality**: mean transfer hop count is a direct read on
  how far the promote pattern has to reach — chains pay about half the
  network diameter, MetaCube meshes stay near one hop.

``repro.obs`` attribution tiles the copies under ``mem.xfer.*``; see
``docs/observability.md``.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis import render_table
from repro.config import SystemConfig, parse_label
from repro.experiments.base import (
    DEFAULT_REQUESTS,
    ExperimentOutput,
    base_system,
    suite,
)
from repro.runner import SimJob, get_runner
from repro.units import to_ns
from repro.workloads import WorkloadSpec

TOPOLOGIES = ("50%-C (NVM-L)", "50%-R (NVM-L)", "50%-SL (NVM-L)", "50%-MC (NVM-L)")
P2P_FRACTIONS = (0.0, 0.05, 0.1, 0.2)


def run(
    requests: int = DEFAULT_REQUESTS,
    workloads: Optional[Sequence[WorkloadSpec]] = None,
    base_config: Optional[SystemConfig] = None,
) -> ExperimentOutput:
    base = base_system(base_config)
    # Like the RAS ablation: the copy path is a property of the network,
    # so one representative workload keeps the sweep tractable.
    workload = suite(workloads)[0]
    runner = get_runner()
    configs = {
        label: parse_label(label, base).with_(p2p_pattern="promote")
        for label in TOPOLOGIES
    }

    keys: List[Tuple[str, float]] = []
    jobs: List[SimJob] = []
    for topo in TOPOLOGIES:
        for fraction in P2P_FRACTIONS:
            jobs.append(
                SimJob(
                    config=configs[topo],
                    workload=replace(workload, p2p_fraction=fraction),
                    requests=requests,
                )
            )
            keys.append((topo, fraction))
    results = dict(zip(keys, runner.run(jobs)))

    rows = []
    grid: Dict[str, Dict[float, float]] = {}
    hop_rows = []
    hops: Dict[str, Dict[float, float]] = {}
    for topo in TOPOLOGIES:
        row = [topo]
        hop_row = [topo]
        grid[topo] = {}
        hops[topo] = {}
        baseline_ps = results[(topo, 0.0)].runtime_ps
        for fraction in P2P_FRACTIONS:
            result = results[(topo, fraction)]
            slowdown = (result.runtime_ps / baseline_ps - 1.0) * 100.0
            grid[topo][fraction] = slowdown
            copies = result.extra.get("p2p.completed", 0.0)
            if fraction == 0.0:
                row.append(f"{to_ns(result.runtime_ps):7.0f}ns")
                hop_row.append("-")
                hops[topo][fraction] = 0.0
                continue
            breakdown = result.collector.p2p_breakdown
            p2p_ns = to_ns(
                breakdown.to_memory.mean
                + breakdown.in_memory.mean
                + breakdown.from_memory.mean
            )
            mean_hops = result.collector.xfer_hops.mean
            hops[topo][fraction] = mean_hops
            row.append(f"{slowdown:+5.1f}% ({copies:.0f}c)")
            hop_row.append(f"{mean_hops:4.2f}h /{p2p_ns:6.0f}ns")
        rows.append(row)
        hop_rows.append(hop_row)

    runtime_table = render_table(
        ["configuration"] + [f"{fraction:g}" for fraction in P2P_FRACTIONS],
        rows,
        title=(
            f"P2P: runtime vs copy fraction ({workload.name}, promote "
            f"pattern; slowdown vs fraction=0, completed copies)"
        ),
    )
    hop_table = render_table(
        ["configuration"] + [f"{fraction:g}" for fraction in P2P_FRACTIONS],
        hop_rows,
        title=(
            f"P2P: mean transfer hops / copy latency ({workload.name})"
        ),
    )

    return ExperimentOutput(
        experiment_id="ablation_p2p",
        title="Peer-to-peer copies: runtime and transfer locality",
        text=runtime_table + "\n\n" + hop_table,
        data={"grid": grid, "xfer_hops": hops},
        notes=(
            "Expected: runtime shrinks as the copy fraction grows — each "
            "copy keeps its data off the host SerDes links, which are the "
            "bottleneck in every mixed-tier config.  Transfer hop counts "
            "separate the topologies: the chain walks its spine (~5 hops "
            "per promote), the skip-list expresses past it (<3), and "
            "copy latency rises gently with congestion on all of them."
        ),
    )
