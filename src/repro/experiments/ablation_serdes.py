"""Ablation — SerDes latency sensitivity (Section 5 discussion).

The paper reports that 2 ns per hop barely differs from 0 ns, while
10 ns has a large impact on network latency.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional, Sequence

from repro.analysis import SpeedupGrid, render_table
from repro.config import SystemConfig, parse_label
from repro.experiments.base import (
    DEFAULT_REQUESTS,
    ExperimentOutput,
    base_system,
    suite,
)
from repro.units import ns
from repro.workloads import WorkloadSpec

SERDES_NS = (0.0, 2.0, 10.0)
TOPOLOGIES = ("100%-C", "100%-T")


def run(
    requests: int = DEFAULT_REQUESTS,
    workloads: Optional[Sequence[WorkloadSpec]] = None,
    base_config: Optional[SystemConfig] = None,
) -> ExperimentOutput:
    base = base_system(base_config)

    def config_fn(label: str) -> SystemConfig:
        topo_label, _, serdes = label.partition("|")
        config = parse_label(topo_label, base)
        if serdes:
            config = config.with_(
                link=replace(config.link, serdes_latency_ps=ns(float(serdes)))
            )
        return config

    grid = SpeedupGrid(
        suite(workloads), requests=requests, base_config=base, config_fn=config_fn
    )
    grid.prefetch(
        [f"{topo}|{serdes}" for topo in TOPOLOGIES for serdes in SERDES_NS]
    )
    rows = []
    data: Dict[str, Dict[float, float]] = {}
    for topo in TOPOLOGIES:
        data[topo] = {}
        baseline = None
        row = [topo]
        for serdes in SERDES_NS:
            totals = [
                grid.result(f"{topo}|{serdes}", w).runtime_ps
                for w in grid.workloads
            ]
            mean_runtime = sum(totals) / len(totals)
            if baseline is None:
                baseline = mean_runtime
            slowdown = (mean_runtime / baseline - 1.0) * 100.0
            data[topo][serdes] = slowdown
            row.append(f"{slowdown:+.1f}%")
        rows.append(row)
    text = render_table(
        ["configuration"] + [f"{s:.0f} ns" for s in SERDES_NS],
        rows,
        title="Ablation: runtime vs per-hop SerDes latency (rel. to 0 ns)",
    )
    return ExperimentOutput(
        experiment_id="ablation_serdes",
        title="SerDes latency sensitivity",
        text=text,
        data={"slowdown": data},
        notes=(
            "Expected (paper): 2 ns is close to 0 ns; 10 ns hurts, and hurts "
            "the chain (most hops) the most."
        ),
    )
