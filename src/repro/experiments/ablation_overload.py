"""Overload ablation — graceful degradation past the saturation knee.

Drives one skip-list MN with an *open-loop* Poisson arrival process at a
sweep of offered-load multiples (the closed-loop injector of the paper
can never exceed capacity, so this regime is invisible to it), and
contrasts two host-edge policies:

* **no protection** — open-loop injection only: every arrival is
  admitted and waits as long as it takes.  Offered load past the knee
  makes the host-edge backlog grow monotonically with load, and the
  latency of what does complete is unbounded queueing delay.
* **deadline + shedding** — end-to-end deadlines with bounded retry
  plus admission-control watermarks (hysteresis): past the knee the
  backlog is clamped at ``shed_high``, goodput *plateaus* at roughly
  the service capacity instead of collapsing, and the p99 of requests
  that do complete stays bounded because no admitted request can queue
  longer than its deadline allows.

Each audited run also certifies the overload conservation invariant
(generated == completed + timed-out + shed + failed) via ``repro.check``.
See ``docs/ras.md`` for the overload model.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis import render_table
from repro.config import SystemConfig, parse_label
from repro.experiments.base import (
    DEFAULT_REQUESTS,
    ExperimentOutput,
    base_system,
    suite,
)
from repro.runner import SimJob, get_runner
from repro.units import ns
from repro.workloads import WorkloadSpec

TOPOLOGY = "100%-SL"
#: Offered load as a multiple of the workload's baseline arrival rate.
LOAD_FACTORS = (0.5, 1.0, 2.0, 4.0, 8.0)
LEGS = ("open", "shed")

#: Host-edge policy of the protected leg: generous end-to-end deadline
#: with one retry, and watermarks a few windows deep.
DEADLINE_PS = ns(1500)
MAX_RETRIES = 1
SHED_HIGH = 96
SHED_LOW = 48


def _leg_config(leg: str, base: SystemConfig) -> SystemConfig:
    config = parse_label(TOPOLOGY, base)
    if leg == "shed":
        return config.with_overload(
            deadline_ps=DEADLINE_PS,
            max_retries=MAX_RETRIES,
            shed_high=SHED_HIGH,
            shed_low=SHED_LOW,
        )
    return config


def run(
    requests: int = DEFAULT_REQUESTS,
    workloads: Optional[Sequence[WorkloadSpec]] = None,
    base_config: Optional[SystemConfig] = None,
) -> ExperimentOutput:
    base = base_system(base_config)
    # Overload behaviour is a property of the host edge and the network,
    # so one representative workload keeps the sweep tractable.
    workload = suite(workloads)[0]
    runner = get_runner()

    keys: List[Tuple[str, float]] = []
    jobs: List[SimJob] = []
    for leg in LEGS:
        config = _leg_config(leg, base)
        for factor in LOAD_FACTORS:
            jobs.append(
                SimJob(
                    config=config,
                    workload=replace(
                        workload,
                        arrival="poisson",
                        mean_gap_ns=workload.mean_gap_ns / factor,
                    ),
                    requests=requests,
                )
            )
            keys.append((leg, factor))
    results = dict(zip(keys, runner.run(jobs)))

    goodput: Dict[str, Dict[float, float]] = {}
    p99: Dict[str, Dict[float, float]] = {}
    backlog: Dict[str, Dict[float, float]] = {}
    miss: Dict[str, Dict[float, float]] = {}
    rows = []
    for leg in LEGS:
        goodput[leg] = {}
        p99[leg] = {}
        backlog[leg] = {}
        miss[leg] = {}
        row = [leg]
        for factor in LOAD_FACTORS:
            result = results[(leg, factor)]
            goodput[leg][factor] = result.goodput_rps
            p99[leg][factor] = result.p99_latency_ns
            backlog[leg][factor] = result.extra.get("overload.peak_backlog", 0.0)
            miss[leg][factor] = result.deadline_miss_rate
            row.append(
                f"{result.goodput_rps / 1e6:6.1f}M/s "
                f"p99={result.p99_latency_ns:6.0f}ns "
                f"bk={backlog[leg][factor]:4.0f} "
                f"miss={miss[leg][factor] * 100.0:4.1f}%"
            )
        rows.append(row)

    table = render_table(
        ["policy"] + [f"{factor:g}x" for factor in LOAD_FACTORS],
        rows,
        title=(
            f"Overload: goodput / success-p99 / peak backlog / miss rate "
            f"vs offered load ({workload.name}, open-loop Poisson, "
            f"{TOPOLOGY})"
        ),
    )

    return ExperimentOutput(
        experiment_id="ablation_overload",
        title="Overload robustness: goodput collapse vs graceful shedding",
        text=table,
        data={
            "grid": goodput,
            "p99_ns": p99,
            "peak_backlog": backlog,
            "miss_rate": miss,
        },
        notes=(
            "Expected: past the knee the unprotected leg's peak backlog grows "
            "monotonically with offered load and its p99 is dominated by "
            "unbounded host-edge queueing; the deadline+shedding leg "
            "clamps the backlog at shed_high, its goodput plateaus near "
            "service capacity, and the p99 of *completed* requests stays "
            "bounded because admission and deadlines cap the queueing any "
            "served request can accumulate."
        ),
    )
