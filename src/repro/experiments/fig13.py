"""Fig 13 — sensitivity to the number of host ports (8 -> 4).

Halving the port count (fixed 2 TB) doubles the cubes per port and
concentrates the same system-level workload onto half the injectors:
each remaining port carries twice the request rate *and* twice the
request count, so total system work is held constant.

Paper shape: performance degrades across the board; linearly-growing
topologies (chain, ring) degrade fastest; MetaCubes are nearly flat;
all-NVM configurations degrade least (they are memory-latency-bound).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional, Sequence

from repro.analysis import render_table
from repro.config import SystemConfig, parse_label
from repro.experiments.base import (
    DEFAULT_REQUESTS,
    PROPOSED_CONFIGS,
    ExperimentOutput,
    base_system,
    suite,
)
from repro.runner import SimJob, get_runner
from repro.workloads import WorkloadSpec

LABELS = ["100%-C", "100%-R"] + PROPOSED_CONFIGS


def run(
    requests: int = DEFAULT_REQUESTS,
    workloads: Optional[Sequence[WorkloadSpec]] = None,
    base_config: Optional[SystemConfig] = None,
) -> ExperimentOutput:
    base = base_system(base_config)
    specs = suite(workloads)
    # One batch of (8-port, 4-port) pairs so the runner can parallelize
    # and memoize across figures.  Half the ports -> each must retire
    # twice the requests for the same total system work (the per-port
    # rate scales inside the workload generator).
    batch = []
    for workload in specs:
        for label in LABELS:
            eight_config = parse_label(label, base)
            four_config = eight_config.with_(
                host=replace(eight_config.host, num_ports=4)
            )
            batch.append(SimJob(eight_config, workload, requests))
            batch.append(SimJob(four_config, workload, 2 * requests))
    results = iter(get_runner().run(batch))
    data: Dict[str, Dict[str, float]] = {}
    rows = []
    for workload in specs:
        row = [workload.name]
        data[workload.name] = {}
        for label in LABELS:
            eight = next(results)
            four = next(results)
            delta = (eight.runtime_ps * 2 / four.runtime_ps - 1.0) * 100.0
            # note: the 8-port system would take eight.runtime_ps to
            # serve `requests` per port; serving 2x requests at the same
            # per-port throughput would take 2x that, hence the factor.
            data[workload.name][label] = delta
            row.append(f"{delta:+.1f}%")
        rows.append(row)
    averages = {
        label: sum(data[w][label] for w in data) / len(data) for label in LABELS
    }
    rows.append(["average"] + [f"{averages[label]:+.1f}%" for label in LABELS])
    text = render_table(
        ["workload"] + LABELS,
        rows,
        title=(
            "Fig 13: speedup of a 4-port system over the 8-port baseline "
            "(2 TB, equal total work)"
        ),
    )
    return ExperimentOutput(
        experiment_id="fig13",
        title="Port-count sensitivity (4 vs 8 host ports)",
        text=text,
        data={"delta": data, "averages": averages},
        notes=(
            "Expected shape (paper): negative across the board; chain/ring "
            "worst (hop counts double), MetaCube nearly flat, all-NVM least "
            "affected."
        ),
    )
