"""Shared plumbing for experiment modules."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.config import SystemConfig
from repro.workloads import PAPER_SUITE, WorkloadSpec

DEFAULT_REQUESTS = 2000

# The 12 baseline configurations of Fig 10 (chain/ring/tree x mixes).
BASELINE_CONFIGS = [
    "100%-C",
    "100%-R",
    "100%-T",
    "50%-C (NVM-L)",
    "50%-R (NVM-L)",
    "50%-T (NVM-L)",
    "50%-C (NVM-F)",
    "50%-R (NVM-F)",
    "50%-T (NVM-F)",
    "0%-C",
    "0%-R",
    "0%-T",
]

# The 12 proposed-topology configurations of Figs 11/12.
PROPOSED_CONFIGS = [
    "100%-T",
    "100%-SL",
    "100%-MC",
    "50%-T (NVM-L)",
    "50%-SL (NVM-L)",
    "50%-MC (NVM-L)",
    "50%-T (NVM-F)",
    "50%-SL (NVM-F)",
    "50%-MC (NVM-F)",
    "0%-T",
    "0%-SL",
    "0%-MC",
]

NORMALIZATION_BASELINE = "100%-C"


@dataclass
class ExperimentOutput:
    """The product of one experiment run."""

    experiment_id: str
    title: str
    text: str
    data: Dict[str, object] = field(default_factory=dict)
    notes: str = ""

    def __str__(self) -> str:  # pragma: no cover - convenience
        parts = [self.text]
        if self.notes:
            parts.append("")
            parts.append(self.notes)
        return "\n".join(parts)

    def series(self) -> Dict[str, Dict[str, float]]:
        """The primary two-level {row: {column: value}} series, if any."""
        for key in ("speedups", "delta", "relative_energy", "grid", "breakdown"):
            value = self.data.get(key)
            if isinstance(value, dict) and value:
                first = next(iter(value.values()))
                if isinstance(first, dict):
                    return value  # type: ignore[return-value]
        return {}

    def save_csv(self, path) -> None:
        """Write the primary series as CSV (rows x columns)."""
        import csv
        from pathlib import Path

        series = self.series()
        with Path(path).open("w", newline="") as handle:
            writer = csv.writer(handle)
            if not series:
                writer.writerow(["experiment", self.experiment_id])
                return
            labels = {str(col) for row in series.values() for col in row}
            columns = _sorted_columns(labels)
            writer.writerow([self.experiment_id] + columns)
            for row_name, row in series.items():
                writer.writerow(
                    [row_name]
                    + [
                        _csv_cell(row.get(col, row.get(_maybe_num(col), "")))
                        for col in columns
                    ]
                )


def _sorted_columns(labels):
    """Column order for CSV export.

    Ablation sweeps label columns with numbers (window sizes 2, 10,
    16, ...); sorting those as strings interleaves magnitudes, so sort
    numerically whenever every label parses as a number.
    """
    try:
        return sorted(labels, key=float)
    except ValueError:
        return sorted(labels)


def _maybe_num(text: str):
    try:
        return float(text)
    except (TypeError, ValueError):
        return text


def _csv_cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    if isinstance(value, dict):
        return ";".join(f"{k}={_csv_cell(v)}" for k, v in value.items())
    return str(value)


def suite(workloads: Optional[Sequence[WorkloadSpec]] = None) -> List[WorkloadSpec]:
    """The workload list an experiment should run (defaults to all eight)."""
    if workloads is None:
        return list(PAPER_SUITE.values())
    return list(workloads)


def base_system(config: Optional[SystemConfig] = None) -> SystemConfig:
    return config if config is not None else SystemConfig()
