"""Fig 5 — breakdown of memory request latency (to / in / from memory).

Paper shape: network latency dominates the memory-array latency under
load; to-memory exceeds from-memory (responses are prioritized on the
shared links, so requests queue); NW — the lightest workload — shows
the largest in-memory share.

This experiment forces per-hop latency attribution on
(``config.obs.attribution``), so the three-way split is *derived* from
the N-way segment taxonomy (``repro.obs.attribution``) rather than read
off the transaction timestamps — the two agree exactly, which the
``tests/test_obs.py`` consistency tests pin down.  The per-segment
tables additionally expose tail percentiles (p50/p95/p99) per hop
class, which the timestamp split cannot provide.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis import SpeedupGrid, render_table
from repro.config import SystemConfig
from repro.experiments.base import (
    DEFAULT_REQUESTS,
    ExperimentOutput,
    base_system,
    suite,
)
from repro.obs.attribution import segment_table_rows, three_way_ns
from repro.results import SimResult
from repro.sim.stats import Histogram
from repro.workloads import WorkloadSpec

LABELS = ["100%-C", "100%-R", "100%-T"]


def _merge_segments(results: Sequence[SimResult]) -> Dict[str, Histogram]:
    """Cross-workload merge of per-segment histograms for one config."""
    merged: Dict[str, Histogram] = {}
    for result in results:
        for label, hist in result.collector.segments.items():
            into = merged.get(label)
            if into is None:
                into = merged[label] = Histogram(
                    hist.bucket_width, len(hist.buckets)
                )
            into.merge(hist)
    return merged


def run(
    requests: int = DEFAULT_REQUESTS,
    workloads: Optional[Sequence[WorkloadSpec]] = None,
    base_config: Optional[SystemConfig] = None,
) -> ExperimentOutput:
    base = base_system(base_config).with_obs(attribution=True)
    grid = SpeedupGrid(suite(workloads), requests=requests, base_config=base)
    grid.prefetch(LABELS)
    rows: List[List[object]] = []
    data: Dict[str, Dict[str, Dict[str, float]]] = {}
    per_label: Dict[str, List[SimResult]] = {label: [] for label in LABELS}
    for workload in grid.workloads:
        results = [grid.result(label, workload) for label in LABELS]
        chain_total = results[0].collector.all.total_ns or 1.0
        data[workload.name] = {}
        for result in results:
            per_label[result.config_label].append(result)
            split = three_way_ns(result.collector.segments, result.transactions)
            total_ns = sum(split.values())
            data[workload.name][result.config_label] = dict(
                split,
                relative_to_chain=total_ns / chain_total,
                p95_ns=result.p95_latency_ns,
                p99_ns=result.p99_latency_ns,
            )
            rows.append(
                [
                    f"{workload.name}/{result.config_label}",
                    f"{split['to_memory']:.1f}",
                    f"{split['in_memory']:.1f}",
                    f"{split['from_memory']:.1f}",
                    f"{result.p95_latency_ns:.0f}",
                    f"{result.p99_latency_ns:.0f}",
                    f"{total_ns / chain_total:.2f}",
                ]
            )
    text = render_table(
        [
            "workload/config",
            "to-mem (ns)",
            "in-mem (ns)",
            "from-mem (ns)",
            "p95",
            "p99",
            "rel. chain",
        ],
        rows,
        title="Fig 5: latency breakdown of DRAM MNs, normalized to chain total",
    )
    sections = [text]
    for label in LABELS:
        results = per_label[label]
        segments = _merge_segments(results)
        transactions = sum(result.transactions for result in results)
        sections.append(
            render_table(
                ["segment", "ns/txn", "mean", "p50", "p95", "p99"],
                segment_table_rows(segments, transactions),
                title=f"{label}: per-hop attribution, all workloads "
                "(* = percentile clamped to observed max)",
            )
        )
    return ExperimentOutput(
        experiment_id="fig05",
        title="Breakdown of memory request latency in DRAM MNs",
        text="\n\n".join(sections),
        data={"breakdown": data},
        notes=(
            "Expected shape (paper): network latency (to+from) exceeds the "
            "in-memory latency under load; to-memory > from-memory; NW has "
            "the highest in-memory share.  The three-way split here is "
            "derived from per-hop segment attribution (repro.obs), not the "
            "transaction timestamps."
        ),
    )
