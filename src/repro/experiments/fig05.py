"""Fig 5 — breakdown of memory request latency (to / in / from memory).

Paper shape: network latency dominates the memory-array latency under
load; to-memory exceeds from-memory (responses are prioritized on the
shared links, so requests queue); NW — the lightest workload — shows
the largest in-memory share.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis import render_table
from repro.analysis.breakdown import breakdown_rows
from repro.config import SystemConfig
from repro.experiments.base import (
    DEFAULT_REQUESTS,
    ExperimentOutput,
    base_system,
    suite,
)
from repro.analysis import SpeedupGrid
from repro.workloads import WorkloadSpec

LABELS = ["100%-C", "100%-R", "100%-T"]


def run(
    requests: int = DEFAULT_REQUESTS,
    workloads: Optional[Sequence[WorkloadSpec]] = None,
    base_config: Optional[SystemConfig] = None,
) -> ExperimentOutput:
    grid = SpeedupGrid(
        suite(workloads), requests=requests, base_config=base_system(base_config)
    )
    grid.prefetch(LABELS)
    rows: List[List[object]] = []
    data: Dict[str, Dict[str, Dict[str, float]]] = {}
    for workload in grid.workloads:
        results = [grid.result(label, workload) for label in LABELS]
        chain_total = results[0].collector.all.total_ns or 1.0
        data[workload.name] = {}
        for result in results:
            b = result.collector.all
            data[workload.name][result.config_label] = {
                "to_memory_ns": b.to_memory_ns,
                "in_memory_ns": b.in_memory_ns,
                "from_memory_ns": b.from_memory_ns,
                "relative_to_chain": b.total_ns / chain_total,
            }
            rows.append(
                [
                    f"{workload.name}/{result.config_label}",
                    f"{b.to_memory_ns:.1f}",
                    f"{b.in_memory_ns:.1f}",
                    f"{b.from_memory_ns:.1f}",
                    f"{b.total_ns / chain_total:.2f}",
                ]
            )
    text = render_table(
        ["workload/config", "to-mem (ns)", "in-mem (ns)", "from-mem (ns)", "rel. chain"],
        rows,
        title="Fig 5: latency breakdown of DRAM MNs, normalized to chain total",
    )
    return ExperimentOutput(
        experiment_id="fig05",
        title="Breakdown of memory request latency in DRAM MNs",
        text=text,
        data={"breakdown": data, "rows": breakdown_rows([])},
        notes=(
            "Expected shape (paper): network latency (to+from) exceeds the "
            "in-memory latency under load; to-memory > from-memory; NW has "
            "the highest in-memory share."
        ),
    )
