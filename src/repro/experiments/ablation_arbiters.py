"""Ablation — the full arbitration design space of Section 4.1.

Compares all five arbiters: the round-robin baseline, the proposed
distance-based scheme and its enhanced variant, plus the two schemes
the paper discusses but rejects as impractical (true age-based, and
globally-weighted round robin), which serve as oracles.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.analysis import SpeedupGrid, render_table
from repro.config import VALID_ARBITERS, SystemConfig, parse_label
from repro.experiments.base import (
    DEFAULT_REQUESTS,
    ExperimentOutput,
    base_system,
    suite,
)
from repro.workloads import WorkloadSpec

TOPOLOGY_LABELS = ["100%-C", "100%-T", "50%-C (NVM-L)", "50%-T (NVM-F)"]


def run(
    requests: int = DEFAULT_REQUESTS,
    workloads: Optional[Sequence[WorkloadSpec]] = None,
    base_config: Optional[SystemConfig] = None,
) -> ExperimentOutput:
    base = base_system(base_config)

    def config_fn(label: str) -> SystemConfig:
        topo_label, _, arbiter = label.partition("|")
        config = parse_label(topo_label, base)
        if arbiter:
            config = config.with_(arbiter=arbiter)
        return config

    grid = SpeedupGrid(
        suite(workloads), requests=requests, base_config=base, config_fn=config_fn
    )
    grid.prefetch(
        [
            f"{topo_label}|{arbiter}"
            for topo_label in TOPOLOGY_LABELS
            for arbiter in ("round_robin",) + tuple(VALID_ARBITERS)
        ]
    )
    data: Dict[str, Dict[str, float]] = {}
    rows = []
    for topo_label in TOPOLOGY_LABELS:
        data[topo_label] = {}
        row = [topo_label]
        for arbiter in VALID_ARBITERS:
            deltas = []
            for workload in grid.workloads:
                rr = grid.result(f"{topo_label}|round_robin", workload)
                alt = grid.result(f"{topo_label}|{arbiter}", workload)
                deltas.append(alt.speedup_over(rr) * 100.0)
            mean = sum(deltas) / len(deltas)
            data[topo_label][arbiter] = mean
            row.append(f"{mean:+.2f}%")
        rows.append(row)
    text = render_table(
        ["configuration"] + list(VALID_ARBITERS),
        rows,
        title="Ablation: arbitration schemes vs round-robin (workload average)",
    )
    return ExperimentOutput(
        experiment_id="ablation_arbiters",
        title="Arbitration design space (Section 4.1 alternatives)",
        text=text,
        data={"delta": data},
        notes=(
            "age and global_weighted are the impractical oracles the paper "
            "rejects; distance should approach them."
        ),
    )
