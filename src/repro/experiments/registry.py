"""Registry mapping experiment ids to their run() entry points."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import ConfigError
from repro.experiments import (
    ablation_arbiters,
    ablation_buffers,
    ablation_interleave,
    ablation_overload,
    ablation_p2p,
    ablation_ras,
    ablation_ratio,
    ablation_serdes,
    ablation_window,
    analysis_parking_lot,
    diagrams,
    fig04,
    fig05,
    fig07,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    fleet_scale,
    table01,
    table02,
)
from repro.experiments.base import ExperimentOutput

EXPERIMENTS: Dict[str, Callable[..., ExperimentOutput]] = {
    "table01": table01.run,
    "table02": table02.run,
    "fig03": diagrams.run_fig03,
    "fig04": fig04.run,
    "fig05": fig05.run,
    "fig07": fig07.run,
    "fig08": diagrams.run_fig08,
    "fig09": diagrams.run_fig09,
    "fig10": fig10.run,
    "fig11": fig11.run,
    "fig12": fig12.run,
    "fig13": fig13.run,
    "fig14": fig14.run,
    "fig15": fig15.run,
    "ablation_arbiters": ablation_arbiters.run,
    "ablation_interleave": ablation_interleave.run,
    "ablation_overload": ablation_overload.run,
    "ablation_p2p": ablation_p2p.run,
    "ablation_ras": ablation_ras.run,
    "ablation_serdes": ablation_serdes.run,
    "ablation_ratio": ablation_ratio.run,
    "ablation_window": ablation_window.run,
    "ablation_buffers": ablation_buffers.run,
    "analysis_parking_lot": analysis_parking_lot.run,
    "fleet_scale": fleet_scale.run,
}


def experiment_ids() -> List[str]:
    return list(EXPERIMENTS)


def get_experiment(experiment_id: str) -> Callable[..., ExperimentOutput]:
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        raise ConfigError(
            f"unknown experiment {experiment_id!r}; choose from {experiment_ids()}"
        ) from None
