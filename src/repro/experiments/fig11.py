"""Fig 11 — Tree vs Skip-List vs MetaCube (round-robin arbitration).

Paper shape: MetaCubes outperform every other topology in every run
(lowest hop count); the skip-list performs close to the tree, with its
largest benefit in NVM-L mixes (writes pushed down the chain stop
blocking reads at cube input ports); for MetaCubes, all-DRAM beats the
NVM mixes because the hop count is low enough that array latency
starts to dominate.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis import SpeedupGrid
from repro.config import SystemConfig
from repro.experiments.base import (
    DEFAULT_REQUESTS,
    NORMALIZATION_BASELINE,
    PROPOSED_CONFIGS,
    ExperimentOutput,
    base_system,
    suite,
)
from repro.workloads import WorkloadSpec


def run(
    requests: int = DEFAULT_REQUESTS,
    workloads: Optional[Sequence[WorkloadSpec]] = None,
    base_config: Optional[SystemConfig] = None,
) -> ExperimentOutput:
    grid = SpeedupGrid(
        suite(workloads), requests=requests, base_config=base_system(base_config)
    )
    speedups = grid.speedups(PROPOSED_CONFIGS, NORMALIZATION_BASELINE)
    averages = grid.averages(speedups, PROPOSED_CONFIGS)
    text = grid.render(
        PROPOSED_CONFIGS,
        NORMALIZATION_BASELINE,
        title=(
            "Fig 11: Tree vs SkipList vs MetaCube (round-robin arbitration), "
            "vs 100% chain"
        ),
    )
    return ExperimentOutput(
        experiment_id="fig11",
        title="Skip-list and MetaCube topologies vs the tree",
        text=text,
        data={"speedups": speedups, "averages": averages},
        notes=(
            "Expected shape (paper): MetaCube best overall; skip-list close "
            "to tree (ahead for write-heavy workloads); 100%-MC beats the "
            "MC NVM mixes."
        ),
    )
