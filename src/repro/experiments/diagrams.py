"""ASCII renderings of the paper's structural figures (Figs 3, 8, 9).

These figures are diagrams rather than measurements; rendering them
from the actual topology builders doubles as a structural check that
the implementation matches the paper's drawings (e.g. the 16-cube
skip-list reaches its farthest cube in five hops).
"""

from __future__ import annotations

from repro import visual
from repro.config import SystemConfig
from repro.experiments.base import ExperimentOutput
from repro.topology import build_topology


def run_fig03(**_ignored) -> ExperimentOutput:
    """Fig 3: the baseline chain / ring / tree MN shapes."""
    sections = []
    for topology in ("chain", "ring", "tree"):
        topo = build_topology(SystemConfig(topology=topology))
        sections.append(visual.render_distance_histogram(topo))
    return ExperimentOutput(
        experiment_id="fig03",
        title="Baseline MN topologies (structural)",
        text="\n\n".join(sections),
    )


def run_fig08(**_ignored) -> ExperimentOutput:
    """Fig 8: the 16-cube skip-list with its bypass links."""
    topo = build_topology(SystemConfig(topology="skiplist"))
    text = visual.render_skiplist(16) + "\n\n" + visual.render_distance_histogram(topo)
    return ExperimentOutput(
        experiment_id="fig08",
        title="Skip-list topology for 16 memory cubes",
        text=text,
        notes="The farthest cube is reached in five hops, as in the paper.",
    )


def run_fig09(**_ignored) -> ExperimentOutput:
    """Fig 9: the MetaCube organization."""
    topo = build_topology(SystemConfig(topology="metacube"))
    text = (
        visual.render_topology(topo)
        + "\n\n"
        + visual.render_distance_histogram(topo)
    )
    return ExperimentOutput(
        experiment_id="fig09",
        title="MetaCube organization (structural)",
        text=text,
        notes="~~ marks on-interposer links inside a MetaCube package.",
    )
