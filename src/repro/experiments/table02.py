"""Table 2 — the evaluated system's parameters, as resolved in code."""

from __future__ import annotations

from repro.analysis import render_table
from repro.config import SystemConfig
from repro.experiments.base import ExperimentOutput
from repro.units import to_ns


def run(**_ignored) -> ExperimentOutput:
    config = SystemConfig()
    dram, nvm = config.dram, config.nvm
    rows = [
        ["Memory ports", config.host.num_ports],
        ["Total memory", f"{config.total_capacity_bytes // 2**40} TiB"],
        [
            "Stack capacity",
            f"{dram.capacity_bytes // 2**30} GiB (DRAM), "
            f"{nvm.capacity_bytes // 2**30} GiB (NVM)",
        ],
        ["Banks / stack", config.cube.banks_per_stack],
        [
            "DRAM timings",
            f"tRCD={to_ns(dram.trcd_ps):.0f}ns tCL={to_ns(dram.tcl_ps):.0f}ns "
            f"tRP={to_ns(dram.trp_ps):.0f}ns tRAS={to_ns(dram.tras_ps):.0f}ns",
        ],
        [
            "NVM timings",
            f"tRCD={to_ns(nvm.trcd_ps):.0f}ns tCL={to_ns(nvm.tcl_ps):.0f}ns "
            f"tWR={to_ns(nvm.twr_ps):.0f}ns",
        ],
        [
            "DRAM read/write energy",
            f"{dram.read_energy_pj_per_bit:.0f} pJ/bit",
        ],
        [
            "NVM read/write energy",
            f"{nvm.read_energy_pj_per_bit:.0f} / "
            f"{nvm.write_energy_pj_per_bit:.0f} pJ/bit",
        ],
        [
            "Network energy",
            f"{config.energy.network_pj_per_bit_hop:.0f} pJ/bit/hop",
        ],
        [
            "Links",
            f"{config.link.lanes}-bit @ {config.link.lane_gbps:.0f} Gbps, "
            f"SerDes {to_ns(config.link.serdes_latency_ps):.0f} ns/hop",
        ],
        ["Interleaving", f"{config.host.interleave_bytes} B across cubes"],
        ["Cubes per port (all-DRAM)", SystemConfig().cubes_per_port],
    ]
    text = render_table(
        ["Parameter", "Value"], rows, title="Table 2: evaluated system parameters"
    )
    return ExperimentOutput(
        experiment_id="table02",
        title="List of parameters in the evaluated system",
        text=text,
        data={"rows": rows},
    )
