"""Command-line entry point: ``python -m repro.experiments <id>``."""

from __future__ import annotations

import argparse
import inspect
import os
import sys
import time
from typing import List, Optional

from repro.config import SystemConfig
from repro.experiments.registry import experiment_ids, get_experiment
from repro.runner import configure_runner, default_jobs
from repro.workloads import get_workload


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (e.g. fig04), or 'all', or 'list'",
    )
    parser.add_argument(
        "--requests",
        type=int,
        default=2000,
        help="memory requests simulated per run (default 2000)",
    )
    parser.add_argument(
        "--workloads",
        default="",
        help="comma-separated subset of workloads (default: all eight)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="simulation worker processes (default: $REPRO_JOBS or 1)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="largest fleet size for fleet experiments (ignored by "
        "experiments that take no 'shards' parameter)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="disk result-cache directory (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the disk result cache (in-memory memoization stays on)",
    )
    parser.add_argument(
        "--obs",
        action="store_true",
        help="enable per-hop latency attribution on every run (distinct "
        "cache entries from unobserved runs)",
    )
    parser.add_argument(
        "--trace",
        metavar="DIR",
        default=None,
        help="record event traces into DIR (implies --obs; traces are "
        "written only by runs that actually simulate, not cache hits)",
    )
    parser.add_argument(
        "--audit",
        action="store_true",
        help="run every simulation with invariant audits on (repro.check; "
        "exported as REPRO_AUDIT=1 so worker processes audit too — "
        "results and cache entries are unchanged)",
    )
    parser.add_argument(
        "--engine",
        choices=("heap", "wheel", "batch"),
        default=None,
        help="event-scheduler backend (exported as REPRO_ENGINE so worker "
        "processes use it too; results, digests and cache entries are "
        "identical across backends — batch needs the numpy extra)",
    )
    parser.add_argument(
        "--profile",
        metavar="PATH",
        nargs="?",
        const="",
        default=None,
        help="run under cProfile; prints the hottest functions and, with "
        "a PATH, dumps the raw pstats file there (forces --jobs 1 — "
        "worker processes would escape the profiler)",
    )
    args = parser.parse_args(argv)

    if args.audit:
        os.environ["REPRO_AUDIT"] = "1"
    if args.engine:
        os.environ["REPRO_ENGINE"] = args.engine

    if args.experiment == "list":
        for experiment_id in experiment_ids():
            print(experiment_id)
        return 0

    workloads = None
    if args.workloads:
        workloads = [get_workload(name) for name in args.workloads.split(",")]

    base_config = None
    if args.obs or args.trace:
        base_config = SystemConfig().with_obs(
            attribution=True,
            trace=args.trace is not None,
            trace_dir=args.trace,
        )

    jobs = args.jobs if args.jobs is not None else default_jobs()
    if args.profile is not None and jobs != 1:
        print("--profile forces --jobs 1 (cProfile cannot see worker "
              "processes)", file=sys.stderr)
        jobs = 1
    runner = configure_runner(
        jobs=jobs,
        cache_dir=args.cache_dir,
        persistent=not args.no_cache,
    )

    profiler = None
    if args.profile is not None:
        import cProfile

        profiler = cProfile.Profile()

    ids = experiment_ids() if args.experiment == "all" else [args.experiment]
    for experiment_id in ids:
        run = get_experiment(experiment_id)
        started = time.time()
        simulated_before = runner.simulations_run
        kwargs = {
            "requests": args.requests,
            "workloads": workloads,
            "base_config": base_config,
        }
        # Experiment-specific knobs only reach experiments that declare
        # the matching parameter (e.g. --shards -> fleet_scale).
        if args.shards is not None:
            if "shards" in inspect.signature(run).parameters:
                kwargs["shards"] = args.shards
        if profiler is not None:
            profiler.enable()
        output = run(**kwargs)
        if profiler is not None:
            profiler.disable()
        elapsed = time.time() - started
        simulated = runner.simulations_run - simulated_before
        print(output.text)
        if output.notes:
            print()
            print(f"Note: {output.notes}")
        print(
            f"[{experiment_id} completed in {elapsed:.1f}s — "
            f"{simulated} simulations run, jobs={runner.jobs}, "
            f"{runner.cache.describe()}]"
        )
        print()

    if profiler is not None:
        import pstats

        stats = pstats.Stats(profiler, stream=sys.stdout)
        if args.profile:
            stats.dump_stats(args.profile)
            print(f"raw profile written to {args.profile}")
        stats.sort_stats("tottime").print_stats(25)
    return 0


if __name__ == "__main__":
    sys.exit(main())
