"""Fig 12 — all techniques combined.

The proposed topologies (tree / skip-list / MetaCube) run with the
*enhanced* distance-based arbitration (type- and technology-aware,
Section 5.3), and skip-lists additionally enable read-priority
injection and the write-burst hysteresis that re-admits writes to skip
paths.

Paper shape: everything improves over Fig 11; the skip-list gains the
most (notably in 50% NVM-L mixes); the most write-intensive workload
(BACKPROP) benefits most overall.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence

from repro.analysis import SpeedupGrid
from repro.config import (
    ARBITER_DISTANCE_ENHANCED,
    TOPOLOGY_SKIPLIST,
    SystemConfig,
    parse_label,
)
from repro.experiments.base import (
    DEFAULT_REQUESTS,
    NORMALIZATION_BASELINE,
    PROPOSED_CONFIGS,
    ExperimentOutput,
    base_system,
    suite,
)
from repro.workloads import WorkloadSpec


def combined_config(label: str, base: SystemConfig) -> SystemConfig:
    """Build the all-techniques configuration for a paper-style label.

    The normalization baseline (100%-C) stays on round-robin — Fig 12
    normalizes to the *unmodified* chain.
    """
    config = parse_label(label, base)
    if label == NORMALIZATION_BASELINE:
        return config
    config = config.with_(arbiter=ARBITER_DISTANCE_ENHANCED)
    if config.topology == TOPOLOGY_SKIPLIST:
        config = config.with_(
            write_skip_hysteresis=True,
            host=replace(config.host, read_priority_injection=True),
        )
    return config


def run(
    requests: int = DEFAULT_REQUESTS,
    workloads: Optional[Sequence[WorkloadSpec]] = None,
    base_config: Optional[SystemConfig] = None,
) -> ExperimentOutput:
    base = base_system(base_config)
    grid = SpeedupGrid(
        suite(workloads),
        requests=requests,
        base_config=base,
        config_fn=lambda label: combined_config(label, base),
    )
    speedups = grid.speedups(PROPOSED_CONFIGS, NORMALIZATION_BASELINE)
    averages = grid.averages(speedups, PROPOSED_CONFIGS)
    text = grid.render(
        PROPOSED_CONFIGS,
        NORMALIZATION_BASELINE,
        title=(
            "Fig 12: all techniques combined (enhanced distance arbitration), "
            "vs 100% chain"
        ),
    )
    return ExperimentOutput(
        experiment_id="fig12",
        title="All proposed techniques combined",
        text=text,
        data={"speedups": speedups, "averages": averages},
        notes=(
            "Expected shape (paper): better than the Fig 11 equivalents on "
            "average, with the skip-list improving the most (write "
            "deprioritization + hysteresis)."
        ),
    )
