"""Fleet scale — tail latency and availability across MN shards.

The paper models one memory network behind one processor; a deployment
is a *fleet* of such MNs, and fleet-level service metrics are dominated
by the tail of the worst shard (the tail-at-scale effect).  This
experiment composes heterogeneous fleets (shards cycle through the
tree / skip-list / MetaCube proposals) via :mod:`repro.fleet` and sweeps
two axes:

* **scale sweep** — shard count x offered-load x tenant skew.  Each leg
  runs one tenant across every shard; the ``hot`` leg doubles the
  arrival rate and the ``skew`` leg concentrates the address stream on
  a Zipf-hot subset of the footprint.  Reported per point: fleet p50 /
  p99 and goodput, aggregated *streamingly* (per-shard results fold into
  fixed-size accumulators and are released, so the sweep's memory use is
  independent of shard count).
* **availability leg** — the largest fleet re-run with staggered
  per-shard fault plans: every other shard loses a cube at a different
  simulated time.  Reported: fleet availability (served / admitted) and
  the p99 degradation against the healthy fleet.

Because each shard is an ordinary content-addressed
:class:`~repro.runner.SimJob`, warm-cache replays of the whole
experiment cost zero simulations, and results are bit-identical for any
``--jobs`` value.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis import render_table
from repro.config import SystemConfig, parse_label
from repro.experiments.base import (
    DEFAULT_REQUESTS,
    ExperimentOutput,
    base_system,
    suite,
)
from repro.fleet import FleetConfig, FleetResult, Tenant, run_fleet
from repro.ras import FaultPlan
from repro.units import ns
from repro.workloads import WorkloadSpec

#: Shard-count sweep (capped by the ``shards`` parameter / ``--shards``).
SHARD_COUNTS = (1, 4, 16)

#: Heterogeneous tech/topology mix the fleet's shards cycle through.
SHARD_MIX = ("100%-T", "100%-SL", "50%-MC (NVM-L)")

#: (leg, rate multiple, tenant skew) points of the scale sweep.
LEGS: Tuple[Tuple[str, float, float], ...] = (
    ("base", 1.0, 0.0),
    ("hot", 2.0, 0.0),
    ("skew", 1.0, 0.6),
)

#: Availability leg: every other shard loses cube 1, at times staggered
#: across shards so the fleet degrades gradually rather than in step.
FAULT_STRIDE = 2
FAULT_STAGGER_PS = ns(150.0)
FAULT_BASE_PS = ns(200.0)


def fleet_shards(count: int, base: SystemConfig) -> Tuple[SystemConfig, ...]:
    """``count`` shard configs cycling through the heterogeneous mix."""
    mix = [parse_label(label, base) for label in SHARD_MIX]
    return tuple(mix[i % len(mix)] for i in range(count))


def staggered_faults(
    shards: Sequence[SystemConfig],
) -> Tuple[SystemConfig, ...]:
    """Inject a staggered cube failure into every ``FAULT_STRIDE``-th shard."""
    out: List[SystemConfig] = []
    for index, shard in enumerate(shards):
        if index % FAULT_STRIDE == 0:
            when = FAULT_BASE_PS + (index // FAULT_STRIDE) * FAULT_STAGGER_PS
            shard = replace(
                shard, ras=FaultPlan(cube_failures=((1, when),))
            )
        out.append(shard)
    return tuple(out)


def _shard_counts(shards: Optional[int]) -> Tuple[int, ...]:
    if shards is None:
        return SHARD_COUNTS
    counts = sorted({c for c in SHARD_COUNTS if c < shards} | {shards})
    return tuple(counts)


def _fmt_ns(value: Optional[float]) -> str:
    return "     -" if value is None else f"{value:6.0f}"


def run(
    requests: int = DEFAULT_REQUESTS,
    workloads: Optional[Sequence[WorkloadSpec]] = None,
    base_config: Optional[SystemConfig] = None,
    shards: Optional[int] = None,
) -> ExperimentOutput:
    base = base_system(base_config)
    workload = suite(workloads)[0]
    counts = _shard_counts(shards)

    # -- scale sweep: shard count x rate x skew -------------------------
    p99: Dict[str, Dict[int, Optional[float]]] = {}
    p50: Dict[str, Dict[int, Optional[float]]] = {}
    goodput: Dict[str, Dict[int, float]] = {}
    rows = []
    largest_base: Optional[FleetResult] = None
    for leg, rate, skew in LEGS:
        p99[leg] = {}
        p50[leg] = {}
        goodput[leg] = {}
        row = [leg]
        for count in counts:
            fleet = FleetConfig(
                shards=fleet_shards(count, base),
                workload=workload,
                tenants=(Tenant(leg, skew=skew, rate_scale=rate),),
                requests_per_shard=requests,
            )
            result = run_fleet(fleet)
            total = result.total
            tails = total.tails_ns()
            p99[leg][count] = tails["p99"]
            p50[leg][count] = tails["p50"]
            goodput[leg][count] = total.goodput_rps
            if leg == "base" and count == counts[-1]:
                largest_base = result
            row.append(
                f"p50={_fmt_ns(tails['p50'])} p99={_fmt_ns(tails['p99'])}ns "
                f"{total.goodput_rps / 1e6:6.1f}M/s"
            )
        rows.append(row)

    # -- availability leg: staggered faults on the largest fleet --------
    faulty_fleet = FleetConfig(
        shards=staggered_faults(fleet_shards(counts[-1], base)),
        workload=workload,
        tenants=(Tenant("base"),),
        requests_per_shard=requests,
    )
    faulty = run_fleet(faulty_fleet)
    healthy = largest_base
    assert healthy is not None
    healthy_p99 = healthy.total.tails_ns()["p99"] or 0.0
    faulty_p99 = faulty.total.tails_ns()["p99"] or 0.0
    rows.append(
        ["ras"]
        + ["-"] * (len(counts) - 1)
        + [
            f"avail={faulty.total.availability:.4f} "
            f"p99={faulty_p99:6.0f}ns "
            f"(+{faulty_p99 - healthy_p99:.0f}ns vs healthy)"
        ]
    )

    table = render_table(
        ["leg"] + [f"{count} shards" for count in counts],
        rows,
        title=(
            f"Fleet scale: tail latency / goodput vs shard count "
            f"({workload.name}, shards cycle {', '.join(SHARD_MIX)})"
        ),
    )

    return ExperimentOutput(
        experiment_id="fleet_scale",
        title="Fleet scale: tail-at-scale and availability across MN shards",
        text=table,
        data={
            "grid": {
                leg: {str(count): value for count, value in series.items()}
                for leg, series in p99.items()
            },
            "p50_ns": {
                leg: {str(count): value for count, value in series.items()}
                for leg, series in p50.items()
            },
            "goodput_rps": {
                leg: {str(count): value for count, value in series.items()}
                for leg, series in goodput.items()
            },
            "availability": faulty.total.availability,
            "fleet_digest": faulty.digest(),
        },
        notes=(
            "Expected: fleet p99 grows with shard count even at fixed "
            "per-shard load (tail-at-scale: the fleet tail tracks the "
            "worst shard), the hot leg shifts the whole curve up, and the "
            "skew leg mainly inflates p99 via row-buffer conflict on the "
            "hot lines.  The availability leg degrades gracefully: "
            "staggered cube failures cost capacity and p99, not the "
            "fleet."
        ),
    )
