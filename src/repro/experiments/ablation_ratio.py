"""Ablation — finer DRAM:NVM capacity ratio sweep on the tree.

The paper evaluates {0%, 50%, 100%}; this sweep adds 25% and 75% to
locate the crossover where network-size savings stop covering the NVM
array penalty.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.analysis import SpeedupGrid, render_table
from repro.config import NVM_LAST, TOPOLOGY_TREE, SystemConfig
from repro.experiments.base import (
    DEFAULT_REQUESTS,
    ExperimentOutput,
    base_system,
    suite,
)
from repro.workloads import WorkloadSpec

FRACTIONS = (1.0, 0.75, 0.50, 0.25, 0.0)


def run(
    requests: int = DEFAULT_REQUESTS,
    workloads: Optional[Sequence[WorkloadSpec]] = None,
    base_config: Optional[SystemConfig] = None,
) -> ExperimentOutput:
    base = base_system(base_config)
    # keep only ratios that decompose into whole cubes for this system
    fractions = []
    for fraction in FRACTIONS:
        try:
            base.with_(dram_fraction=fraction).cube_counts()
        except Exception:
            continue
        fractions.append(fraction)

    def config_fn(label: str) -> SystemConfig:
        if label == "baseline":
            return base.with_(topology="chain", dram_fraction=1.0)
        return base.with_(
            topology=TOPOLOGY_TREE,
            dram_fraction=float(label),
            nvm_placement=NVM_LAST,
        )

    grid = SpeedupGrid(
        suite(workloads), requests=requests, base_config=base, config_fn=config_fn
    )
    grid.prefetch(["baseline"] + [str(fraction) for fraction in fractions])
    rows = []
    data: Dict[str, Dict[float, float]] = {}
    for workload in grid.workloads:
        base_result = grid.result("baseline", workload)
        data[workload.name] = {}
        row = [workload.name]
        for fraction in fractions:
            result = grid.result(str(fraction), workload)
            speedup = result.speedup_over(base_result) * 100.0
            data[workload.name][fraction] = speedup
            row.append(f"{speedup:+.1f}%")
        rows.append(row)
    averages = [
        sum(data[w][f] for w in data) / len(data) for f in fractions
    ]
    rows.append(["average"] + [f"{a:+.1f}%" for a in averages])
    text = render_table(
        ["workload"] + [f"{int(f * 100)}% DRAM" for f in fractions],
        rows,
        title="Ablation: DRAM fraction sweep on the tree (NVM-L), vs 100%-C",
    )
    return ExperimentOutput(
        experiment_id="ablation_ratio",
        title="DRAM:NVM ratio sweep",
        text=text,
        data={"grid": data, "averages": dict(zip(fractions, averages))},
    )
