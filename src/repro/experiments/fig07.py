"""Fig 7 — tree topology with different DRAM:NVM capacity ratios.

Paper shape: mixing in NVM is workload-dependent but roughly
competitive with all-DRAM (the 50% NVM-L tree is best on average in
the paper); the all-NVM tree varies strongly with workload and hurts
the lowest-contention workload (NW).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis import SpeedupGrid
from repro.config import SystemConfig
from repro.experiments.base import (
    DEFAULT_REQUESTS,
    ExperimentOutput,
    base_system,
    suite,
)
from repro.workloads import WorkloadSpec

LABELS = ["100%-T", "50%-T (NVM-L)", "50%-T (NVM-F)", "0%-T"]
BASELINE = "100%-C"


def run(
    requests: int = DEFAULT_REQUESTS,
    workloads: Optional[Sequence[WorkloadSpec]] = None,
    base_config: Optional[SystemConfig] = None,
) -> ExperimentOutput:
    grid = SpeedupGrid(
        suite(workloads), requests=requests, base_config=base_system(base_config)
    )
    speedups = grid.speedups(LABELS, BASELINE)
    averages = grid.averages(speedups, LABELS)
    text = grid.render(
        LABELS,
        BASELINE,
        title="Fig 7: tree topology with DRAM:NVM ratios, vs 100% chain",
    )
    return ExperimentOutput(
        experiment_id="fig07",
        title="Tree-based topology with different ratios of DRAM to NVM",
        text=text,
        data={"speedups": speedups, "averages": averages},
        notes=(
            "Expected shape (paper): some NVM is beneficial (50% mixes "
            "competitive with 100% DRAM thanks to the smaller network); "
            "0%-T varies highly with the workload."
        ),
    )
