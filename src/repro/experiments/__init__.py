"""Experiment harness: regenerate every table and figure of the paper.

Each ``figNN``/``tableNN`` module exposes ``run(...) -> ExperimentOutput``
whose ``text`` is the printable table and whose ``data`` holds the raw
series.  ``python -m repro.experiments <id>`` runs one from the shell;
see :mod:`repro.experiments.registry` for the full index.
"""

from repro.experiments.base import ExperimentOutput
from repro.experiments.registry import EXPERIMENTS, get_experiment, experiment_ids

__all__ = ["ExperimentOutput", "EXPERIMENTS", "get_experiment", "experiment_ids"]
