"""Fig 4 — speedup of DRAM-only Ring and Tree MNs over the Chain.

Paper shape: the tree always wins (roughly 20-35%), the ring sits in
between (roughly 5-15%), and the chain is always the slowest.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis import SpeedupGrid
from repro.config import SystemConfig
from repro.experiments.base import (
    DEFAULT_REQUESTS,
    ExperimentOutput,
    base_system,
    suite,
)
from repro.workloads import WorkloadSpec

LABELS = ["100%-R", "100%-T"]
BASELINE = "100%-C"


def run(
    requests: int = DEFAULT_REQUESTS,
    workloads: Optional[Sequence[WorkloadSpec]] = None,
    base_config: Optional[SystemConfig] = None,
) -> ExperimentOutput:
    grid = SpeedupGrid(
        suite(workloads), requests=requests, base_config=base_system(base_config)
    )
    speedups = grid.speedups(LABELS, BASELINE)
    averages = grid.averages(speedups, LABELS)
    text = grid.render(
        LABELS,
        BASELINE,
        title="Fig 4: speedup of DRAM memory networks over a chain topology",
    )
    return ExperimentOutput(
        experiment_id="fig04",
        title="Speedup comparison of DRAM MNs normalized to chain",
        text=text,
        data={"speedups": speedups, "averages": averages},
        notes=(
            "Expected shape (paper): Tree > Ring > Chain for every workload; "
            "NW (lowest network load) benefits the least."
        ),
    )
