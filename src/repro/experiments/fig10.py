"""Fig 10 — distance-based arbitration on the baseline topologies.

For each of the 12 baseline configurations (chain/ring/tree x NVM
ratios/placements), this measures the speedup obtained by replacing the
locally-fair round-robin arbiter with the naive distance-based arbiter
of Section 4.1.

Paper shape: mixed results — gains for most configurations (strongest
where the parking-lot problem is worst), but NVM-F placements can
degrade because pure distance mispredicts the age of responses from
slow NVM cubes sitting close to the host.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.analysis import SpeedupGrid, render_table
from repro.config import ARBITER_DISTANCE, SystemConfig, parse_label
from repro.experiments.base import (
    BASELINE_CONFIGS,
    DEFAULT_REQUESTS,
    ExperimentOutput,
    base_system,
    suite,
)
from repro.workloads import WorkloadSpec


def run(
    requests: int = DEFAULT_REQUESTS,
    workloads: Optional[Sequence[WorkloadSpec]] = None,
    base_config: Optional[SystemConfig] = None,
) -> ExperimentOutput:
    base = base_system(base_config)

    def config_fn(label: str) -> SystemConfig:
        if label.endswith("+DA"):
            return parse_label(label[: -len("+DA")], base).with_(
                arbiter=ARBITER_DISTANCE
            )
        return parse_label(label, base)

    grid = SpeedupGrid(
        suite(workloads), requests=requests, base_config=base, config_fn=config_fn
    )
    grid.prefetch(
        BASELINE_CONFIGS + [label + "+DA" for label in BASELINE_CONFIGS]
    )
    data: Dict[str, Dict[str, float]] = {}
    rows = []
    for workload in grid.workloads:
        row = [workload.name]
        data[workload.name] = {}
        for label in BASELINE_CONFIGS:
            rr = grid.result(label, workload)
            da = grid.result(label + "+DA", workload)
            delta = da.speedup_over(rr) * 100.0
            data[workload.name][label] = delta
            row.append(f"{delta:+.1f}%")
        rows.append(row)
    averages = {
        label: sum(data[w][label] for w in data) / len(data)
        for label in BASELINE_CONFIGS
    }
    rows.append(
        ["average"] + [f"{averages[label]:+.1f}%" for label in BASELINE_CONFIGS]
    )
    text = render_table(
        ["workload"] + BASELINE_CONFIGS,
        rows,
        title="Fig 10: speedup of distance-based arbitration over round-robin",
    )
    return ExperimentOutput(
        experiment_id="fig10",
        title="Distance-based arbitration vs locally-fair round-robin",
        text=text,
        data={"delta": data, "averages": averages},
        notes=(
            "Expected shape (paper): modest gains for most configurations; "
            "NVM-F placements benefit least (distance mispredicts age when "
            "slow cubes sit near the host)."
        ),
    )
