"""Fig 15 — dynamic-energy breakdown, normalized to the 100% chain.

Energy is accounted from the simulator's actual traffic: 5 pJ/bit per
external hop, 12 pJ/bit for DRAM accesses and NVM reads, 120 pJ/bit for
NVM writes (Table 2).  Values are averaged over all workloads and
reported relative to the 100%-C MN's total.

Paper shape: network energy scales with hop count, so it dominates the
all-DRAM chain; the all-NVM chain cuts network energy ~3x but its write
energy pushes its *total* above the 100%-C baseline; the tree spends
the least network energy, and the skip-list pays extra network energy
for its longer write paths.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.analysis import SpeedupGrid, render_table
from repro.config import SystemConfig
from repro.experiments.base import (
    DEFAULT_REQUESTS,
    ExperimentOutput,
    base_system,
    suite,
)
from repro.workloads import WorkloadSpec

LABELS = [
    "100%-C",
    "100%-R",
    "100%-T",
    "100%-SL",
    "100%-MC",
    "50%-C (NVM-L)",
    "50%-T (NVM-L)",
    "50%-SL (NVM-L)",
    "50%-MC (NVM-L)",
    "0%-C",
    "0%-T",
]


def run(
    requests: int = DEFAULT_REQUESTS,
    workloads: Optional[Sequence[WorkloadSpec]] = None,
    base_config: Optional[SystemConfig] = None,
) -> ExperimentOutput:
    grid = SpeedupGrid(
        suite(workloads), requests=requests, base_config=base_system(base_config)
    )
    grid.prefetch(LABELS)
    totals: Dict[str, Dict[str, float]] = {
        label: {"network": 0.0, "read": 0.0, "write": 0.0} for label in LABELS
    }
    for workload in grid.workloads:
        for label in LABELS:
            energy = grid.result(label, workload).energy
            totals[label]["network"] += energy.network_pj + energy.interposer_pj
            totals[label]["read"] += energy.memory_read_pj
            totals[label]["write"] += energy.memory_write_pj
    count = len(grid.workloads)
    for label in LABELS:
        for key in totals[label]:
            totals[label][key] /= count
    baseline_total = sum(totals["100%-C"].values()) or 1.0
    rows = []
    data: Dict[str, Dict[str, float]] = {}
    for label in LABELS:
        network = totals[label]["network"] / baseline_total * 100.0
        read = totals[label]["read"] / baseline_total * 100.0
        write = totals[label]["write"] / baseline_total * 100.0
        data[label] = {
            "network": network,
            "read": read,
            "write": write,
            "total": network + read + write,
        }
        rows.append(
            [
                label,
                f"{network:.1f}%",
                f"{read:.1f}%",
                f"{write:.1f}%",
                f"{network + read + write:.1f}%",
            ]
        )
    text = render_table(
        ["configuration", "network", "read", "write", "total"],
        rows,
        title="Fig 15: dynamic energy relative to the 100%-C MN (workload average)",
    )
    return ExperimentOutput(
        experiment_id="fig15",
        title="Network vs memory access energy breakdown",
        text=text,
        data={"relative_energy": data},
        notes=(
            "Expected shape (paper): network energy shrinks with network "
            "size; NVM write energy pushes 0%-C above 100%-C total; tree "
            "cheapest on network energy, skip-list slightly above it."
        ),
    )
