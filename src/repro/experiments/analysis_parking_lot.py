"""Reproduction of the Section 3.2 router-queue-fairness analysis.

Runs the chain MN under round-robin and under distance-based
arbitration and reports the per-cube input-queue waiting times: under
RR the transit queues (return traffic from deeper cubes) wait
disproportionately at the near-host cubes; distance-based arbitration
shrinks that transit wait.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.analysis.parking_lot import (
    cube_queue_waits,
    mean_transit_wait_ns,
    render_parking_lot_report,
)
from repro.config import ARBITER_DISTANCE, ARBITER_ROUND_ROBIN, SystemConfig
from repro.experiments.base import (
    DEFAULT_REQUESTS,
    ExperimentOutput,
    base_system,
    suite,
)
from repro.system import MemoryNetworkSystem
from repro.workloads import WorkloadSpec, get_workload


def run(
    requests: int = DEFAULT_REQUESTS,
    workloads: Optional[Sequence[WorkloadSpec]] = None,
    base_config: Optional[SystemConfig] = None,
) -> ExperimentOutput:
    base = base_system(base_config)
    workload = (suite(workloads) or [get_workload("KMEANS")])[0]
    sections = []
    transit_waits: Dict[str, float] = {}
    for arbiter in (ARBITER_ROUND_ROBIN, ARBITER_DISTANCE):
        config = base.with_(topology="chain", arbiter=arbiter)
        system = MemoryNetworkSystem(config, workload, requests=requests)
        system.run()
        transit_waits[arbiter] = mean_transit_wait_ns(system)
        sections.append(
            f"--- arbiter: {arbiter} ---\n" + render_parking_lot_report(system)
        )
    summary = (
        f"mean transit-queue wait: round_robin="
        f"{transit_waits[ARBITER_ROUND_ROBIN]:.2f} ns, "
        f"distance={transit_waits[ARBITER_DISTANCE]:.2f} ns"
    )
    return ExperimentOutput(
        experiment_id="analysis_parking_lot",
        title="Router input-queue fairness (the parking-lot problem)",
        text="\n\n".join(sections) + "\n\n" + summary,
        data={"transit_wait_ns": transit_waits},
        notes=(
            "Expected: under round-robin, transit queues wait longer than "
            "local vault queues at near-host cubes; distance arbitration "
            "reduces the transit wait."
        ),
    )
