"""Ablation — router input-buffer depth.

Input buffers absorb bursts and carry the credit loop; too few slots
stall links on credits, while very deep buffers stop mattering once the
MLP window bounds the packets in flight.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional, Sequence

from repro.analysis import SpeedupGrid, render_table
from repro.config import SystemConfig, parse_label
from repro.experiments.base import (
    DEFAULT_REQUESTS,
    ExperimentOutput,
    base_system,
    suite,
)
from repro.workloads import WorkloadSpec, get_workload

DEPTHS = (1, 2, 4, 8, 16)


def run(
    requests: int = DEFAULT_REQUESTS,
    workloads: Optional[Sequence[WorkloadSpec]] = None,
    base_config: Optional[SystemConfig] = None,
) -> ExperimentOutput:
    base = base_system(base_config)
    workload = (suite(workloads) or [get_workload("KMEANS")])[0]

    def config_fn(label: str) -> SystemConfig:
        topo_label, _, depth = label.partition("|")
        config = parse_label(topo_label, base)
        if depth:
            config = config.with_(
                link=replace(config.link, input_buffer_packets=int(depth))
            )
        return config

    grid = SpeedupGrid(
        [workload], requests=requests, base_config=base, config_fn=config_fn
    )
    grid.prefetch(
        [f"{topo}|{depth}" for topo in ("100%-C", "100%-T") for depth in DEPTHS]
        + ["100%-C|8", "100%-T|8"]
    )
    data: Dict[str, Dict[int, float]] = {}
    rows = []
    for topo in ("100%-C", "100%-T"):
        data[topo] = {}
        reference = grid.result(f"{topo}|8", workload)
        row = [topo]
        for depth in DEPTHS:
            result = grid.result(f"{topo}|{depth}", workload)
            delta = result.speedup_over(reference) * 100.0
            data[topo][depth] = delta
            row.append(f"{delta:+.1f}%")
        rows.append(row)
    text = render_table(
        ["configuration"] + [f"{d} slots" for d in DEPTHS],
        rows,
        title=(
            f"Ablation: input-buffer depth on {workload.name} "
            "(speedup vs the default 8 slots)"
        ),
    )
    return ExperimentOutput(
        experiment_id="ablation_buffers",
        title="Router input-buffer depth sweep",
        text=text,
        data={"grid": data},
        notes="Single-slot buffers throttle links on credits; depth beyond "
        "the window's needs is wasted SRAM.",
    )
