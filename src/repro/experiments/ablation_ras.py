"""RAS ablation — throughput/latency/availability under injected faults.

Two sweeps over the four main topologies (chain, ring, skip-list,
MetaCube), both driven by :class:`repro.ras.FaultPlan`:

* **Bit-error rate**: transient CRC errors trigger link-level retry;
  runtime degrades smoothly with BER (each replay costs one extra
  serialization plus the retrain penalty) and availability stays 1.0.
* **Permanent failure time**: one mid-route link dies at a fraction of
  the healthy runtime.  Topologies with path diversity (ring, skip-list
  read paths, MetaCube meshes) reroute and keep availability at or near
  1.0 at the cost of longer routes; the chain — and skip-list *writes*,
  which are pinned to the central chain — lose every cube beyond the
  cut and serve the rest (counted host-level errors, no crash).

The failure edge is the middle edge of the host's READ route to its
farthest cube, so every topology loses a comparably central link.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis import render_table
from repro.config import SystemConfig, parse_label
from repro.experiments.base import (
    DEFAULT_REQUESTS,
    ExperimentOutput,
    base_system,
    suite,
)
from repro.net.routing import RouteClass, RouteTable
from repro.runner import SimJob, get_runner
from repro.topology import build_topology
from repro.topology.base import HOST_ID
from repro.workloads import WorkloadSpec

TOPOLOGIES = ("100%-C", "100%-R", "100%-SL", "100%-MC")
BERS = (0.0, 1e-8, 1e-7, 1e-6, 1e-5)
FAILURE_FRACTIONS = (0.25, 0.5, 0.75)


def _failure_edge(config: SystemConfig) -> Tuple[int, int]:
    """The middle edge of the host -> farthest-cube READ route."""
    topology = build_topology(config)
    table = RouteTable(
        topology.adjacency_by_class(), HOST_ID, topology.cube_ids()
    )
    farthest = max(
        topology.cube_ids(), key=lambda c: table.distance(c, RouteClass.READ)
    )
    route = list(table.route_to_cube(farthest, RouteClass.READ))
    mid = max(len(route) // 2, 1)
    return route[mid - 1], route[mid]


def run(
    requests: int = DEFAULT_REQUESTS,
    workloads: Optional[Sequence[WorkloadSpec]] = None,
    base_config: Optional[SystemConfig] = None,
) -> ExperimentOutput:
    base = base_system(base_config)
    # The fault response is a property of the network, not the request
    # mix; one representative workload keeps the sweep tractable.
    workload = suite(workloads)[0]
    runner = get_runner()
    configs = {label: parse_label(label, base) for label in TOPOLOGIES}

    # Healthy baselines (also the BER=0 column and the runtime anchor
    # for scheduling the permanent failures).
    healthy_jobs = [
        SimJob(config=configs[t], workload=workload, requests=requests)
        for t in TOPOLOGIES
    ]
    healthy = dict(zip(TOPOLOGIES, runner.run(healthy_jobs)))

    # -- transient-error sweep --------------------------------------------
    ber_keys: List[Tuple[str, float]] = []
    ber_jobs: List[SimJob] = []
    for topo in TOPOLOGIES:
        for ber in BERS[1:]:
            ber_jobs.append(
                SimJob(
                    config=configs[topo].with_ras(bit_error_rate=ber),
                    workload=workload,
                    requests=requests,
                )
            )
            ber_keys.append((topo, ber))
    ber_results = dict(zip(ber_keys, runner.run(ber_jobs)))
    for topo in TOPOLOGIES:
        ber_results[(topo, 0.0)] = healthy[topo]

    ber_rows = []
    ber_data: Dict[str, Dict[float, float]] = {}
    for topo in TOPOLOGIES:
        row = [topo]
        ber_data[topo] = {}
        baseline_ps = healthy[topo].runtime_ps
        for ber in BERS:
            result = ber_results[(topo, ber)]
            slowdown = (result.runtime_ps / baseline_ps - 1.0) * 100.0
            replays = result.extra.get("ras.replays", 0.0)
            ber_data[topo][ber] = slowdown
            row.append(f"{slowdown:+5.1f}% ({replays:.0f}r)")
        ber_rows.append(row)
    ber_table = render_table(
        ["configuration"] + [f"{ber:g}" for ber in BERS],
        ber_rows,
        title=(
            f"RAS: runtime vs link bit-error rate "
            f"({workload.name}, slowdown vs BER=0, replays)"
        ),
    )

    # -- permanent-failure sweep ------------------------------------------
    fail_keys: List[Tuple[str, float]] = []
    fail_jobs: List[SimJob] = []
    edges: Dict[str, Tuple[int, int]] = {}
    for topo in TOPOLOGIES:
        edge = edges[topo] = _failure_edge(configs[topo])
        runtime_ps = healthy[topo].runtime_ps
        for fraction in FAILURE_FRACTIONS:
            when = max(int(runtime_ps * fraction), 1)
            fail_jobs.append(
                SimJob(
                    config=configs[topo].with_ras(
                        link_failures=((edge[0], edge[1], when),)
                    ),
                    workload=workload,
                    requests=requests,
                )
            )
            fail_keys.append((topo, fraction))
    fail_results = dict(zip(fail_keys, runner.run(fail_jobs)))

    fail_rows = []
    availability: Dict[str, Dict[float, float]] = {}
    for topo in TOPOLOGIES:
        a, b = edges[topo]
        row = [f"{topo} ({a}-{b})"]
        availability[topo] = {}
        for fraction in FAILURE_FRACTIONS:
            result = fail_results[(topo, fraction)]
            availability[topo][fraction] = result.availability
            row.append(
                f"{result.availability * 100.0:5.1f}% "
                f"/{result.mean_latency_ns:6.0f}ns"
            )
        fail_rows.append(row)
    fail_table = render_table(
        ["configuration (edge)"]
        + [f"t={fraction:g}R" for fraction in FAILURE_FRACTIONS],
        fail_rows,
        title=(
            f"RAS: availability / mean latency vs link-failure time "
            f"({workload.name}, failure at fraction of healthy runtime R)"
        ),
    )

    return ExperimentOutput(
        experiment_id="ablation_ras",
        title="Fault injection: retry overhead and availability",
        text=ber_table + "\n\n" + fail_table,
        data={
            "grid": availability,
            "ber_slowdown": ber_data,
            "failure_edges": {t: list(edges[t]) for t in TOPOLOGIES},
        },
        notes=(
            "Expected: BER slowdown grows with route length (chain worst); "
            "ring/MetaCube reroute around the cut (availability 100%, longer "
            "routes), the chain serves only cubes before the cut, and the "
            "skip-list keeps reads available while writes past the cut fail "
            "(they are pinned to the central chain)."
        ),
    )
