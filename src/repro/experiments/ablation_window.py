"""Ablation — MLP window sweep: latency-bound vs bandwidth-bound MNs.

The benefit of low-diameter topologies hinges on how many requests the
cores keep in flight: with little MLP the system is latency-bound and
every hop counts; with enormous MLP every topology saturates the single
host link and converges.  This sweep documents that regime change (and
thereby the calibration of the paper suite's per-workload MLP values).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.analysis import SpeedupGrid, render_table
from repro.config import SystemConfig, parse_label
from repro.experiments.base import (
    DEFAULT_REQUESTS,
    ExperimentOutput,
    base_system,
    suite,
)
from repro.workloads import WorkloadSpec, get_workload

WINDOWS = (8, 16, 32, 64)


def run(
    requests: int = DEFAULT_REQUESTS,
    workloads: Optional[Sequence[WorkloadSpec]] = None,
    base_config: Optional[SystemConfig] = None,
) -> ExperimentOutput:
    base = base_system(base_config)
    workload = (suite(workloads) or [get_workload("KMEANS")])[0]

    grid_data: Dict[int, Dict[str, float]] = {}
    rows = []
    for window in WINDOWS:
        spec = workload.with_(mlp=window)
        grid = SpeedupGrid([spec], requests=requests, base_config=base)
        speedups = grid.speedups(["100%-T", "100%-MC"], "100%-C")[spec.name]
        grid_data[window] = speedups
        rows.append(
            [
                f"mlp={window}",
                f"{speedups['100%-T']:+.1f}%",
                f"{speedups['100%-MC']:+.1f}%",
            ]
        )
    text = render_table(
        ["window", "tree vs chain", "metacube vs chain"],
        rows,
        title=(
            f"Ablation: MLP window sweep on {workload.name} "
            "(topology benefit vs in-flight parallelism)"
        ),
    )
    return ExperimentOutput(
        experiment_id="ablation_window",
        title="MLP window sweep",
        text=text,
        data={"grid": grid_data},
        notes=(
            "Small windows are latency-bound (hop count dominates); very "
            "large windows converge toward the shared host-link bandwidth."
        ),
    )
