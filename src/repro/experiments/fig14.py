"""Fig 14 — system-capacity sensitivity: 1 TB vs 2 TB.

The cube count stays fixed while each cube's capacity halves (half the
stacked layers, hence half the banks); the workload footprint shrinks
with it (Section 6.2 assumes footprints just under capacity).

Paper shape: all-DRAM configurations gain slightly (smaller footprint,
unchanged network); NVM mixes *lose* — fewer banks means less
memory-level parallelism and more queuing behind slow NVM writes; the
all-NVM chain drops the most.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.analysis import SpeedupGrid, render_table
from repro.config import SystemConfig, parse_label
from repro.experiments.base import (
    DEFAULT_REQUESTS,
    ExperimentOutput,
    base_system,
    suite,
)
from repro.workloads import WorkloadSpec

# The Fig 14 x-axis: five topologies for 100% and both 50% placements,
# chain only for 0%.
TOPOS = ["C", "R", "T", "SL", "MC"]
LABELS = (
    [f"100%-{t}" for t in TOPOS]
    + [f"50%-{t} (NVM-L)" for t in TOPOS]
    + [f"50%-{t} (NVM-F)" for t in TOPOS]
    + ["0%-C"]
)


def run(
    requests: int = DEFAULT_REQUESTS,
    workloads: Optional[Sequence[WorkloadSpec]] = None,
    base_config: Optional[SystemConfig] = None,
) -> ExperimentOutput:
    base = base_system(base_config)

    def config_fn(label: str) -> SystemConfig:
        if label.endswith("@1TB"):
            return parse_label(label[: -len("@1TB")], base).with_(
                capacity_scale=0.5
            )
        return parse_label(label, base)

    grid = SpeedupGrid(
        suite(workloads), requests=requests, base_config=base, config_fn=config_fn
    )
    grid.prefetch(LABELS + [label + "@1TB" for label in LABELS])
    averages: Dict[str, float] = {}
    for label in LABELS:
        deltas = []
        for workload in grid.workloads:
            two_tb = grid.result(label, workload)
            one_tb = grid.result(label + "@1TB", workload)
            deltas.append(one_tb.speedup_over(two_tb) * 100.0)
        averages[label] = sum(deltas) / len(deltas)
    rows = [[label, f"{averages[label]:+.2f}%"] for label in LABELS]
    text = render_table(
        ["configuration", "speedup 1TB vs 2TB"],
        rows,
        title="Fig 14: average speedup when moving from 2 TB to 1 TB",
    )
    return ExperimentOutput(
        experiment_id="fig14",
        title="Average system speedup when moving from 2TB to 1TB",
        text=text,
        data={"averages": averages},
        notes=(
            "Expected shape (paper): 100% DRAM slightly positive; 50% mixes "
            "negative (less bank-level parallelism); 0%-C the largest drop."
        ),
    )
