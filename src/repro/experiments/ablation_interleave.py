"""Ablation — address-interleaving granularity (Section 5 discussion).

The paper chose 256 B empirically: 64 B hurts row-buffer locality in
the cubes; 1 KiB concentrates bursts on one cube and raises network
latency.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional, Sequence

from repro.analysis import SpeedupGrid, render_table
from repro.config import SystemConfig, parse_label
from repro.experiments.base import (
    DEFAULT_REQUESTS,
    ExperimentOutput,
    base_system,
    suite,
)
from repro.workloads import WorkloadSpec

GRANULARITIES = (64, 256, 1024)


def run(
    requests: int = DEFAULT_REQUESTS,
    workloads: Optional[Sequence[WorkloadSpec]] = None,
    base_config: Optional[SystemConfig] = None,
) -> ExperimentOutput:
    base = base_system(base_config)

    def config_fn(label: str) -> SystemConfig:
        topo_label, _, grain = label.partition("|")
        config = parse_label(topo_label, base)
        if grain:
            config = config.with_(
                host=replace(config.host, interleave_bytes=int(grain))
            )
        return config

    grid = SpeedupGrid(
        suite(workloads), requests=requests, base_config=base, config_fn=config_fn
    )
    grid.prefetch(
        ["100%-T|256"] + [f"100%-T|{grain}" for grain in GRANULARITIES]
    )
    rows = []
    data: Dict[str, Dict[int, Dict[str, float]]] = {}
    for workload in grid.workloads:
        data[workload.name] = {}
        base_result = grid.result("100%-T|256", workload)
        for grain in GRANULARITIES:
            result = grid.result(f"100%-T|{grain}", workload)
            data[workload.name][grain] = {
                "speedup_vs_256": result.speedup_over(base_result) * 100.0,
                "row_hit_rate": result.row_hit_rate * 100.0,
                "latency_ns": result.mean_latency_ns,
            }
        rows.append(
            [workload.name]
            + [
                f"{data[workload.name][g]['speedup_vs_256']:+.1f}% "
                f"(hit {data[workload.name][g]['row_hit_rate']:.0f}%)"
                for g in GRANULARITIES
            ]
        )
    text = render_table(
        ["workload"] + [f"{g} B" for g in GRANULARITIES],
        rows,
        title="Ablation: interleave granularity on 100%-T (speedup vs 256 B)",
    )
    return ExperimentOutput(
        experiment_id="ablation_interleave",
        title="Interleave granularity sweep",
        text=text,
        data={"grid": data},
        notes="Expected: 256 B is the sweet spot the paper found empirically.",
    )
