"""Table 1 — maximum DDR bus speed vs DIMMs per channel.

Also prints the resulting capacity-vs-bandwidth frontier that motivates
memory networks (Section 2.1).
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.ddr import DDR3, DDR4, DdrBusModel
from repro.ddr.bus import table1_rows
from repro.experiments.base import ExperimentOutput


def run(**_ignored) -> ExperimentOutput:
    rows = [
        [str(dpc), f"{d3} MHz", f"{d4} MHz"] for dpc, d3, d4 in table1_rows()
    ]
    table = render_table(
        ["Number of DPC", "DDR3", "DDR4"],
        rows,
        title="Table 1: maximum memory interface speeds by DIMMs per channel",
    )
    frontier_rows = []
    for generation in (DDR3, DDR4):
        model = DdrBusModel(generation)
        for point in model.frontier(channels=4):
            frontier_rows.append(
                [
                    f"{generation.name} x4ch @ {int(point['dimms_per_channel'])}DPC",
                    f"{point['capacity_gib']:.0f} GiB",
                    f"{point['bandwidth_gbs']:.1f} GB/s",
                    f"{int(point['pins'])} pins",
                ]
            )
    frontier = render_table(
        ["system", "capacity", "peak bandwidth", "pin cost"],
        frontier_rows,
        title="Capacity-vs-bandwidth frontier (the Section 2.1 trade-off)",
    )
    return ExperimentOutput(
        experiment_id="table01",
        title="DDR bus speed vs DIMMs per channel",
        text=table + "\n\n" + frontier,
        data={"rows": table1_rows()},
        notes="Capacity can only grow by sacrificing bus speed on DDR.",
    )
