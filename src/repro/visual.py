"""ASCII renderings of MN topologies (the paper's Figs 3, 8, 9).

These are documentation/debugging aids: ``render_topology`` draws any
built topology as an adjacency sketch, and the shape-specific renderers
draw the chain/skip-list structures the way the paper's figures do.
"""

from __future__ import annotations

from typing import Dict, List

from repro.net.routing import RouteClass, bfs_paths
from repro.topology.base import HOST_ID, LinkKind, NodeKind, Topology
from repro.topology.skiplist import plan_skip_links


def _node_tag(topo: Topology, node_id: int) -> str:
    spec = topo.nodes[node_id]
    if spec.kind == NodeKind.HOST:
        return "APU"
    if spec.kind == NodeKind.SWITCH:
        return f"[sw{node_id}]"
    tech = (spec.tech or "?")[0]  # D / N
    return f"{tech}{node_id}"


def render_topology(topo: Topology) -> str:
    """Adjacency sketch grouped by distance from the host."""
    paths = bfs_paths(topo.adjacency(RouteClass.READ), HOST_ID)
    by_depth: Dict[int, List[int]] = {}
    for node, path in paths.items():
        by_depth.setdefault(len(path) - 1, []).append(node)
    lines = [f"topology: {topo.name}  (D=DRAM cube, N=NVM cube, sw=switch)"]
    for depth in sorted(by_depth):
        tags = "  ".join(_node_tag(topo, n) for n in sorted(by_depth[depth]))
        lines.append(f"  hop {depth}: {tags}")
    lines.append("links:")
    for edge in topo.edges:
        marker = "~" if edge.link_kind == LinkKind.INTERPOSER else "-"
        classes = "RW" if RouteClass.WRITE in edge.classes else "R "
        lines.append(
            f"  {_node_tag(topo, edge.a):>7} {marker}{marker} "
            f"{_node_tag(topo, edge.b):<7} [{classes}]"
        )
    return "\n".join(lines)


def render_skiplist(count: int) -> str:
    """Draw a skip-list chain with its bypass arcs (the paper's Fig 8).

    ::

        APU--0--1--2--3--4--5--6--7--8--...
             \\________/\\____/
    """
    base = "APU"
    columns = []  # column of each position's first digit
    for position in range(count):
        base += "--"
        columns.append(len(base))
        base += str(position)
    lines = [base]
    for lo, hi in plan_skip_links(count):
        start, end = columns[lo], columns[hi]
        row = [" "] * (end + 1)
        row[start] = "\\"
        for col in range(start + 1, end):
            row[col] = "_"
        row[end] = "/"
        lines.append("".join(row).rstrip())
    lines.append(
        "(arcs are read-only skip links; writes ride the central chain)"
    )
    return "\n".join(lines)


def render_distance_histogram(topo: Topology) -> str:
    """Bar chart of cube count per hop distance."""
    paths = bfs_paths(topo.adjacency(RouteClass.READ), HOST_ID)
    counts: Dict[int, int] = {}
    for cube in topo.cube_ids():
        distance = len(paths[cube]) - 1
        counts[distance] = counts.get(distance, 0) + 1
    lines = [f"{topo.name}: cubes per hop distance"]
    for distance in sorted(counts):
        lines.append(f"  {distance:>2} hops | {'#' * counts[distance]}"
                     f" ({counts[distance]})")
    mean = sum(d * c for d, c in counts.items()) / max(len(topo.cube_ids()), 1)
    lines.append(f"  mean distance: {mean:.2f} hops")
    return "\n".join(lines)
